"""Service-plane suite: epoch rotation correctness + HTTP concurrency.

Three families of guarantees, matching the service's design contract
(``docs/service.md``):

* **Epoch bit-identity** — a daemon's epoch snapshots are a pure
  function of the packet sequence and the config: independent of
  submission framing, of sync-vs-threaded ingestion, and equal to the
  batch-mode replay (:func:`offline_epoch_run`) on scalar, numpy and
  sharded backends, across mid-chunk, exactly-on-boundary and
  empty-trailing-epoch rotations.  The no-rotation degenerate case is
  bit-identical to a monolithic single-pass sketch.
* **Statistical correctness** — partial-key estimates from *merged
  multi-epoch* state stay unbiased (Lemma 3), gated through the shared
  harness so ``REPRO_STAT_*`` margins apply.
* **Concurrency/soak** — threaded clients hammer ``/query``/``/topk``
  against live and frozen epochs during active ingestion: no 5xx, no
  torn reads (every response's epoch descriptor is internally
  consistent), p95 latency recoverable from the ``/metrics`` histogram,
  and shutdown drains every in-flight block.
"""

import json
import random
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import numpy as np
import pytest

from repro.core.serialize import dump_sketch
from repro.engine.sharded import SketchSpec
from repro.extensions.windowed import WindowedMeasurement, split_budget
from repro.flowkeys.key import FIVE_TUPLE
from repro.obs.registry import histogram_quantile
from repro.service import (
    EpochSnapshot,
    EpochStore,
    MeasurementDaemon,
    ServiceConfig,
    ServiceError,
    ServiceServer,
    offline_epoch_run,
)
from repro.traffic.synthetic import zipf_trace

from tests.stat_harness import (
    assert_partial_key_unbiased_states,
    random_partial_specs,
)

CHUNK = 2048  # small feed granularity keeps the suite fast


def make_trace(packets=12_000, flows=2_500, seed=7):
    return zipf_trace(packets, flows, alpha=1.1, seed=seed)


def make_config(engine="numpy", shards=1, strategy="hash", seed=3,
                epoch_packets=None, l=512, **kw):
    spec = SketchSpec(engine=engine, variant="basic", d=2, l=l, seed=seed)
    return ServiceConfig(
        spec=spec,
        key_spec=FIVE_TUPLE,
        shards=shards,
        strategy=strategy,
        chunk=CHUNK,
        epoch_packets=epoch_packets,
        **kw,
    )


def run_daemon(config, trace, block, threaded=False):
    """Feed *trace* through a daemon in *block*-sized submissions."""
    daemon = MeasurementDaemon(config)
    if threaded:
        daemon.start()
        for hi, lo, sizes in trace.batches(block):
            daemon.offer(hi, lo, sizes)
    else:
        for hi, lo, sizes in trace.batches(block):
            daemon.ingest(hi, lo, sizes)
    daemon.close()
    return [daemon.store.get(e) for e in daemon.store.ids()]


BACKENDS = [
    pytest.param("scalar", 1, "hash", id="scalar"),
    pytest.param("numpy", 1, "hash", id="numpy"),
    pytest.param("numpy", 3, "hash", id="sharded-hash"),
    pytest.param("numpy", 2, "round-robin", id="sharded-rr"),
]

# (trace packets, epoch_packets, expected per-epoch counts): a boundary
# mid-chunk, exactly on the chunk grid, and a trace ending exactly on a
# rotation boundary (the would-be trailing epoch is empty -> no snapshot).
ROTATIONS = [
    pytest.param(12_000, 5_000, [5_000, 5_000, 2_000], id="mid-chunk"),
    pytest.param(12_288, 2 * CHUNK, [4_096, 4_096, 4_096], id="on-boundary"),
    pytest.param(10_000, 2_500, [2_500] * 4, id="empty-trailing"),
]


class TestEpochBitIdentity:
    @pytest.mark.parametrize("engine,shards,strategy", BACKENDS)
    @pytest.mark.parametrize("packets,epoch_packets,expected", ROTATIONS)
    def test_snapshots_invariant_to_framing_and_threading(
        self, engine, shards, strategy, packets, epoch_packets, expected
    ):
        trace = make_trace(packets)
        def cfg():
            return make_config(
                engine=engine, shards=shards, strategy=strategy,
                epoch_packets=epoch_packets,
            )

        reference = offline_epoch_run(cfg(), trace.batches(4_096))
        assert [s.packets for s in reference] == expected
        assert [s.epoch for s in reference] == list(range(len(expected)))
        starts = [s.start_seq for s in reference]
        assert starts == [sum(expected[:i]) for i in range(len(expected))]

        # Different submission framing, synchronous ingestion.
        for block in (123, 1_777, packets):
            snaps = run_daemon(cfg(), trace, block)
            assert [s.blob for s in snaps] == [s.blob for s in reference]
            assert [s.packets for s in snaps] == expected

        # Background feeder thread (queue + backpressure) — same bytes.
        threaded = run_daemon(cfg(), trace, 1_024, threaded=True)
        assert [s.blob for s in threaded] == [s.blob for s in reference]

    @pytest.mark.parametrize("engine", ["scalar", "numpy"])
    def test_single_epoch_equals_monolithic(self, engine):
        trace = make_trace(9_000)
        config = make_config(engine=engine)  # no rotation bound
        snaps = run_daemon(config, trace, 1_000)
        assert len(snaps) == 1 and snaps[0].packets == 9_000

        mono = config.spec.build()
        hi, lo, sizes = next(iter(trace.batches(9_000)))
        mono.process_columns(hi, lo, sizes, CHUNK)
        assert snaps[0].blob == dump_sketch(mono)

    def test_epochs_share_hash_family_but_not_rng_streams(self):
        # Same packets fed to epoch 0 and epoch 1 produce different
        # replacement decisions (decorrelated streams) yet mergeable
        # state (one hash family) — the invariant time-travel rests on.
        trace = make_trace(8_000)
        config = make_config(epoch_packets=4_000)
        snaps = run_daemon(config, trace, 4_000)
        assert len(snaps) == 2
        from repro.extensions.merging import merge_cocosketch

        a, b = snaps[0].sketch(), snaps[1].sketch()
        merged = merge_cocosketch(a, b, seed=9)  # raises if families differ
        total = sum(merged.flow_table().values())
        assert total == pytest.approx(trace.total_size)

    def test_empty_trace_leaves_no_epochs(self):
        daemon = MeasurementDaemon(make_config(epoch_packets=100))
        daemon.close()
        assert daemon.store.ids() == []

    def test_single_packet_epochs(self):
        trace = make_trace(5)
        snaps = run_daemon(make_config(epoch_packets=1), trace, 2)
        assert [s.packets for s in snaps] == [1] * 5
        total = sum(sum(s.sketch().flow_table().values()) for s in snaps)
        assert total == pytest.approx(trace.total_size)


class TestEpochMergeAndStore:
    def test_merged_range_preserves_mass_and_is_deterministic(self):
        trace = make_trace(12_000)
        config = make_config(epoch_packets=4_000, shards=2)
        snaps = run_daemon(config, trace, 1_500)

        def build_store():
            store = EpochStore(history=8, seed=config.spec.seed)
            for snap in snaps:
                store.add(snap)
            return store

        merged_a = build_store().merged_range(0, 2)
        merged_b = build_store().merged_range(0, 2)
        assert dump_sketch(merged_a) == dump_sketch(merged_b)
        assert sum(merged_a.flow_table().values()) == pytest.approx(
            trace.total_size
        )
        # Sub-range mass equals the covered epochs' pack. sizes.
        sub = build_store().merged_range(1, 2)
        covered = sum(
            sum(s.sketch().flow_table().values()) for s in snaps[1:]
        )
        assert sum(sub.flow_table().values()) == pytest.approx(covered)

    def test_store_bounds_history_and_rejects_holes(self):
        store = EpochStore(history=3, seed=0)
        blob = dump_sketch(SketchSpec(l=8).build())
        for epoch in range(5):
            store.add(EpochSnapshot(epoch, epoch * 10, 10, 0.0, blob))
        assert store.ids() == [2, 3, 4]
        with pytest.raises(KeyError):
            store.get(0)
        with pytest.raises(KeyError):
            store.merged_range(1, 3)  # epoch 1 evicted
        with pytest.raises(ValueError):
            store.merged_range(4, 2)
        with pytest.raises(ValueError):
            store.add(EpochSnapshot(4, 0, 10, 0.0, blob))
        assert len(store) == 3

    def test_epoch_snapshot_wire_round_trip(self):
        snaps = run_daemon(
            make_config(epoch_packets=2_000), make_trace(4_000), 999
        )
        for snap in snaps:
            assert EpochSnapshot.from_bytes(snap.to_bytes()) == snap


class TestMergedEpochUnbiasedness:
    """Satellite: Lemma 3 on merged multi-epoch estimates.

    Margins flow through the shared harness, so ``REPRO_STAT_Z`` /
    ``REPRO_STAT_REL_FLOOR`` overrides are honored.
    """

    @pytest.mark.parametrize("shards", [1, 2])
    def test_merged_epochs_partial_key_unbiased(self, shards):
        trace = make_trace(20_000, flows=3_000, seed=11)

        def make_state(seed):
            config = make_config(
                shards=shards, seed=seed, epoch_packets=6_000, l=1024
            )
            snaps = offline_epoch_run(config, trace.batches(4_096))
            store = EpochStore(history=8, seed=seed)
            for snap in snaps:
                store.add(snap)
            return store.merged_range(0, snaps[-1].epoch)

        for spec in random_partial_specs(2, seed=5):
            assert_partial_key_unbiased_states(
                make_state,
                trace,
                spec,
                trials=12,
                base_seed=40 + shards,
                label=f"merged-epoch estimate (shards={shards})",
            )


class TestWindowedRotationPaths:
    """Satellite: the rotation arithmetic the daemon depends on."""

    def test_split_budget_cases(self):
        assert split_budget(10, 4) == (4, 6)     # mid-block
        assert split_budget(10, 10) == (10, 0)   # exactly on boundary
        assert split_budget(3, 10) == (3, 0)     # fits entirely
        assert split_budget(0, 10) == (0, 0)     # empty block
        with pytest.raises(ValueError):
            split_budget(-1, 5)
        with pytest.raises(ValueError):
            split_budget(5, 0)

    def test_auto_rotation_splits_batches_exactly(self):
        win = WindowedMeasurement(
            lambda: SketchSpec(engine="numpy", l=64, seed=2).build(),
            FIVE_TUPLE,
            history=8,
            interval=100,
        )
        trace = make_trace(430, flows=60)
        for hi, lo, sizes in trace.batches(97):  # never aligned to 100
            win.process_columns(hi, lo, sizes)
        assert win.windows_closed == 4
        assert win.packets_in_window == 30
        closed_mass = sum(
            sum(t.aggregate(FIVE_TUPLE.partial("SrcIP")).sizes.values())
            for t in win.tables
        )
        assert closed_mass <= trace.total_size

    def test_auto_rotation_via_update_and_update_batch(self):
        def make():
            return SketchSpec(engine="scalar", l=64, seed=2).build()

        one = WindowedMeasurement(make, FIVE_TUPLE, history=8, interval=3)
        for key in range(7):
            one.update(key + 1, 1)
        assert one.windows_closed == 2 and one.packets_in_window == 1

        batched = WindowedMeasurement(make, FIVE_TUPLE, history=8, interval=3)
        batched.update_batch([1, 2, 3, 4, 5, 6, 7])
        assert batched.windows_closed == 2
        assert batched.packets_in_window == 1

    def test_zero_and_single_packet_windows(self):
        win = WindowedMeasurement(
            lambda: SketchSpec(engine="numpy", l=32).build(),
            FIVE_TUPLE,
            interval=1,
        )
        empty = np.empty(0, dtype=np.uint64)
        win.process_columns(empty, empty, np.empty(0, dtype=np.int64))
        assert win.windows_closed == 0  # an empty feed never rotates
        table = win.rotate()  # explicit zero-packet rotation is legal
        assert table.aggregate(FIVE_TUPLE.partial("SrcIP")).sizes == {}
        win.update(42, 9)  # single-packet window rotates immediately
        assert win.windows_closed == 2
        assert win.packets_in_window == 0

    def test_interval_not_multiple_of_pipeline_chunk(self):
        # Interval straddling the engine's internal chunk must not skew
        # window totals; compare against a per-window reference run.
        spec = SketchSpec(engine="numpy", l=256, seed=6)
        sketch = spec.build()
        interval = sketch.pipeline_chunk + 1_000
        trace = make_trace(2 * interval + 500, flows=900)
        win = WindowedMeasurement(
            spec.build, FIVE_TUPLE, history=8, interval=interval
        )
        for hi, lo, sizes in trace.batches(3_333):
            win.process_columns(hi, lo, sizes)
        assert win.windows_closed == 2
        assert win.packets_in_window == 500
        partial = FIVE_TUPLE.partial("SrcIP")
        hi, lo, sizes = next(iter(trace.batches(len(trace))))
        for w, table in enumerate(win.tables):
            ref = spec.build()
            lo_i, hi_i = w * interval, (w + 1) * interval
            ref.process_columns(hi[lo_i:hi_i], lo[lo_i:hi_i], sizes[lo_i:hi_i])
            got = sum(table.aggregate(partial).sizes.values())
            want = sum(
                ref.flow_table().values()
            )
            assert got == pytest.approx(want)


class TestDecayRotationEdges:
    """Satellite: decay-extension edge cases around epoch advancement."""

    def test_zero_tick_is_identity(self):
        from repro.extensions.decay import DecayedCocoSketch

        sketch = DecayedCocoSketch(d=2, l=64, decay=0.5, seed=1)
        for key in range(20):
            sketch.update(key + 1, 10)
        before = sketch.flow_table()
        sketch.tick(0)
        assert sketch.flow_table() == before
        with pytest.raises(ValueError):
            sketch.tick(-1)

    def test_huge_tick_underflows_cleanly(self):
        from repro.extensions.decay import DecayedCocoSketch

        sketch = DecayedCocoSketch(d=2, l=64, decay=0.5, seed=1)
        sketch.update(7, 1_000_000)
        sketch.tick(100_000)  # decay**pending underflows to 0.0, no error
        assert sketch.query(7) == 0.0
        sketch.update(7, 5)  # bucket keeps absorbing after underflow
        assert sketch.query(7) >= 0.0

    def test_reset_clears_epoch_clock(self):
        from repro.extensions.decay import DecayedCocoSketch

        sketch = DecayedCocoSketch(d=1, l=16, decay=0.5, seed=0)
        sketch.update(3, 8)
        sketch.tick(2)
        sketch.reset()
        assert sketch.epoch == 0
        sketch.update(3, 8)
        assert sketch.query(3) == pytest.approx(8.0)

    def test_no_decay_matches_plain_accumulation(self):
        from repro.extensions.decay import DecayedCocoSketch

        sketch = DecayedCocoSketch(d=2, l=128, decay=1.0, seed=4)
        sketch.update(9, 3)
        sketch.tick(50)
        sketch.update(9, 4)
        assert sketch.query(9) == pytest.approx(7.0)


def _get(url, timeout=20):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _sql_url(base, sql, epoch=None, view=None):
    query = f"sql={urllib.parse.quote(sql)}"
    if epoch is not None:
        query += f"&epoch={epoch}"
    if view is not None:
        query += f"&view={view}"
    return f"{base}/query?{query}"


SOAK_SQL = (
    "SELECT SrcIP/8, SUM(size) FROM flows GROUP BY SrcIP/8 "
    "ORDER BY SUM(size) DESC LIMIT 5"
)


class TestHttpSoak:
    EPOCH_PACKETS = 7_000
    CLIENTS = 4
    LOOPS = 3

    def test_concurrent_queries_during_ingestion(self):
        trace = make_trace(20_000, flows=3_000)
        config = make_config(shards=2, epoch_packets=self.EPOCH_PACKETS)
        daemon = MeasurementDaemon(config)
        daemon.start()
        server = ServiceServer(daemon).start()
        base = server.url

        feeding = threading.Event()
        feeding.set()
        errors = []

        def feeder():
            try:
                for _ in range(self.LOOPS):
                    for hi, lo, sizes in trace.batches(1_024):
                        daemon.offer(hi, lo, sizes)
                        time.sleep(0.001)  # stretch ingestion past clients
            finally:
                feeding.clear()

        def client(idx):
            rng = random.Random(100 + idx)
            last_live = {"slim": (-1, -1), "fat": (-1, -1)}
            served = 0
            try:
                while feeding.is_set() or served < 10:
                    choice = rng.random()
                    if choice < 0.2:
                        status, payload = _get(_sql_url(base, SOAK_SQL))
                    elif choice < 0.3:
                        status, payload = _get(
                            _sql_url(base, SOAK_SQL, view="slim")
                        )
                    elif choice < 0.4:
                        status, payload = _get(
                            _sql_url(base, SOAK_SQL, view="fat")
                        )
                    elif choice < 0.6:
                        status, payload = _get(
                            f"{base}/topk?key=SrcIP/8&k=5"
                        )
                    else:
                        status, epochs = _get(f"{base}/epochs")
                        assert status == 200
                        metas = epochs["epochs"]
                        if not metas:
                            continue
                        meta = rng.choice(metas)
                        if choice < 0.8:
                            status, payload = _get(
                                _sql_url(base, SOAK_SQL, epoch=meta["epoch"])
                            )
                        else:
                            lo_e = metas[0]["epoch"]
                            status, payload = _get(
                                _sql_url(
                                    base, SOAK_SQL,
                                    epoch=f"{lo_e}-{meta['epoch']}",
                                )
                            )
                    assert status == 200
                    served += 1
                    desc = payload["epoch"]
                    if desc["kind"] == "live":
                        version = (desc["epoch"], desc["packets"])
                        view = desc["view"]
                        assert view in ("slim", "fat"), desc
                        # No torn reads: per view, live versions move
                        # monotonically for a single reader.
                        assert version >= last_live[view], (version, desc)
                        last_live[view] = version
                        assert desc["staleness"]["packets_behind"] >= 0
                    elif desc["kind"] == "frozen":
                        # Frozen epochs are immutable and exactly sized.
                        assert desc["packets"] == self.EPOCH_PACKETS
                        assert desc["staleness"]["packets_behind"] >= 0
                    else:
                        assert desc["lo"] <= desc["hi"]
                        assert desc["staleness"]["packets_behind"] >= 0
                return served
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((idx, exc))
                raise

        feed_thread = threading.Thread(target=feeder)
        clients = [
            threading.Thread(target=client, args=(i,))
            for i in range(self.CLIENTS)
        ]
        feed_thread.start()
        for thread in clients:
            thread.start()
        feed_thread.join(timeout=120)
        for thread in clients:
            thread.join(timeout=120)
        assert not feeding.is_set()
        assert errors == []

        # Graceful shutdown drains every in-flight block: the rotated
        # epochs plus the live tail must cover every packet offered.
        daemon.close()
        total_fed = self.LOOPS * len(trace)
        snaps = [daemon.store.get(e) for e in daemon.store.ids()]
        assert sum(s.packets for s in snaps) == total_fed
        assert all(
            s.packets == self.EPOCH_PACKETS for s in snaps[:-1]
        )

        # p95 latency is recoverable from the obs histogram.
        metrics = daemon.metrics_snapshot()
        from repro.obs.schema import validate_snapshot

        validate_snapshot(metrics)
        hist = metrics["histograms"]["service.query.seconds"]
        assert hist["count"] >= self.CLIENTS * 10
        p95 = histogram_quantile(hist, 0.95)
        assert 0 < p95 < 60.0
        assert metrics["counters"]["service.ingest.packets"] == total_fed
        server.close()

    def test_closed_daemon_still_serves_frozen_epochs(self):
        trace = make_trace(6_000)
        daemon = MeasurementDaemon(make_config(epoch_packets=2_000))
        for hi, lo, sizes in trace.batches(1_024):
            daemon.ingest(hi, lo, sizes)
        daemon.close()
        with ServiceServer(daemon) as server:
            status, payload = _get(_sql_url(server.url, SOAK_SQL, epoch=0))
            assert status == 200 and payload["rows"]
            status, ranged = _get(_sql_url(server.url, SOAK_SQL, epoch="0-2"))
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(_sql_url(server.url, SOAK_SQL))  # live view is gone
            assert err.value.code == 409

    def test_http_error_paths(self):
        daemon = MeasurementDaemon(make_config(epoch_packets=1_000))
        for hi, lo, sizes in make_trace(2_000).batches(512):
            daemon.ingest(hi, lo, sizes)
        with ServiceServer(daemon) as server:
            base = server.url
            cases = [
                (f"{base}/query", 400),                       # missing sql
                (_sql_url(base, "SELECT bogus"), 400),        # parse error
                (_sql_url(base, SOAK_SQL, epoch="99"), 404),  # unknown epoch
                (_sql_url(base, SOAK_SQL, epoch="3-1"), 400), # empty range
                (f"{base}/topk?k=5", 400),                    # missing key
                (f"{base}/topk?key=SrcIP&k=0", 400),
                (f"{base}/topk?key=NoSuchField", 400),
                (f"{base}/nope", 404),
            ]
            for url, want in cases:
                with pytest.raises(urllib.error.HTTPError) as err:
                    _get(url)
                assert err.value.code == want, url
                body = json.loads(err.value.read())
                assert "error" in body
            # Valid queries still succeed after the error barrage.
            status, payload = _get(_sql_url(base, SOAK_SQL))
            assert status == 200
        daemon.close()


class TestDaemonLifecycle:
    def test_ingest_after_close_rejected(self):
        daemon = MeasurementDaemon(make_config())
        daemon.close()
        hi = np.zeros(1, dtype=np.uint64)
        with pytest.raises(ServiceError):
            daemon.ingest(hi, hi, np.ones(1, dtype=np.int64))
        with pytest.raises(ServiceError):
            daemon.rotate()
        daemon.close()  # idempotent

    def test_offer_requires_running_feeder(self):
        daemon = MeasurementDaemon(make_config())
        hi = np.zeros(1, dtype=np.uint64)
        with pytest.raises(ServiceError):
            daemon.offer(hi, hi, np.ones(1, dtype=np.int64))
        daemon.start()
        with pytest.raises(ServiceError):
            daemon.start()  # already running
        daemon.close()

    def test_manual_rotation_and_live_planner_cache(self):
        trace = make_trace(4_000)
        daemon = MeasurementDaemon(make_config())
        for hi, lo, sizes in trace.batches(CHUNK):
            daemon.ingest(hi, lo, sizes)
        version_a, planner_a = daemon.live_planner()
        version_b, planner_b = daemon.live_planner()
        assert version_a == version_b and planner_a is planner_b
        snap = daemon.rotate()
        assert snap is not None and snap.packets == 4_000
        assert daemon.rotate() is None  # empty epoch -> no snapshot
        version_c, _ = daemon.live_planner()
        assert version_c == (snap.epoch + 1, 0)
        daemon.close()
        assert daemon.store.ids() == [snap.epoch]

    def test_live_view_lags_by_at_most_one_chunk(self):
        daemon = MeasurementDaemon(make_config())
        trace = make_trace(CHUNK + 100)
        for hi, lo, sizes in trace.batches(CHUNK + 100):
            daemon.ingest(hi, lo, sizes)
        (epoch, flushed), planner = daemon.live_planner()
        assert epoch == 0 and flushed == CHUNK  # tail still buffered
        visible = sum(
            planner.table(FIVE_TUPLE.partial("SrcIP")).values.tolist()
        )
        hi, lo, sizes = next(iter(trace.batches(len(trace))))
        assert visible == pytest.approx(float(sizes[:CHUNK].sum()))
        daemon.close()

    def test_live_refresh_serves_stale_cached_view(self):
        with pytest.raises(ValueError):
            make_config(live_refresh_packets=-1)
        daemon = MeasurementDaemon(
            make_config(live_refresh_packets=1_000_000)
        )
        trace = make_trace(3 * CHUNK)
        batches = iter(trace.batches(CHUNK))
        daemon.ingest(*next(batches))
        version_a, planner_a = daemon.live_planner()
        for hi, lo, sizes in batches:
            daemon.ingest(hi, lo, sizes)
        version_b, planner_b = daemon.live_planner()
        # Within the refresh budget the cached view keeps serving, and
        # the reported version matches the (stale) data — consistent.
        assert version_b == version_a and planner_b is planner_a
        snap = daemon.rotate()
        version_c, planner_c = daemon.live_planner()  # new epoch: rebuild
        assert version_c == (snap.epoch + 1, 0)
        assert planner_c is not planner_a
        daemon.close()

    def test_stale_fat_build_never_clobbers_fresher_cache(self):
        """Regression: a fat live build finishing after a rotation (or
        after a newer build) must not overwrite the cache — otherwise
        ``live_refresh_packets`` serves a pre-rotation planner tagged
        with a post-rotation epoch id.
        """
        from repro.query import QueryPlanner

        daemon = MeasurementDaemon(
            make_config(live_refresh_packets=1_000_000)
        )
        trace = make_trace(2 * CHUNK)
        for hi, lo, sizes in trace.batches(CHUNK):
            daemon.ingest(hi, lo, sizes)
        version_a, planner_a = daemon.live_planner(view="fat")
        assert version_a == (0, 2 * CHUNK)

        # A slow concurrent build from an older flushed point lands late:
        stale = QueryPlanner(
            daemon.config.spec.build(), FIVE_TUPLE, version=(0, 0)
        )
        daemon._publish_live_view((0, 0), stale)
        version_b, planner_b = daemon.live_planner(view="fat")
        assert version_b == version_a and planner_b is planner_a

        snap = daemon.rotate()
        version_c, planner_c = daemon.live_planner(view="fat")
        assert version_c == (snap.epoch + 1, 0)
        assert planner_c is not planner_a

        # A pre-rotation build arriving after the rotation: the cache
        # must stay on the post-rotation epoch, version/epoch agreeing.
        daemon._publish_live_view(version_a, planner_a)
        version_d, planner_d = daemon.live_planner(view="fat")
        assert version_d == version_c and planner_d is planner_c
        daemon.close()

    def test_live_view_selection_and_errors(self):
        daemon = MeasurementDaemon(make_config())
        assert daemon.default_live_view == "slim"
        with pytest.raises(ValueError):
            daemon.live_planner(view="bogus")
        daemon.close()

        with pytest.raises(ValueError):
            make_config(live_view="bogus")
        with pytest.raises(ValueError):
            make_config(slim_sync=False, live_view="slim")
        with pytest.raises(ValueError):
            make_config(slim_max_pending_rows=0)

        fat_only = MeasurementDaemon(make_config(slim_sync=False))
        assert fat_only.default_live_view == "fat"
        trace = make_trace(CHUNK)
        for hi, lo, sizes in trace.batches(CHUNK):
            fat_only.ingest(hi, lo, sizes)
        version, _ = fat_only.live_planner()  # auto -> fat
        assert version == (0, CHUNK)
        with pytest.raises(ServiceError):
            fat_only.live_planner(view="slim")
        with ServiceServer(fat_only) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(_sql_url(server.url, SOAK_SQL, view="slim"))
            assert err.value.code == 409
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(_sql_url(server.url, SOAK_SQL, view="nope"))
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(_sql_url(server.url, SOAK_SQL, epoch=0, view="fat"))
            assert err.value.code == 400  # view is live-only
            status, payload = _get(_sql_url(server.url, SOAK_SQL, view="fat"))
            assert status == 200
            assert payload["epoch"]["view"] == "fat"
            assert payload["epoch"]["staleness"]["packets_behind"] == 0
        fat_only.close()

    def test_ingest_error_surfaces_through_offer(self):
        daemon = MeasurementDaemon(make_config())
        daemon.start()
        bad = np.zeros(3, dtype=np.uint64)
        daemon.offer(bad, bad, None)  # len(None) kills the ingest thread
        deadline = time.monotonic() + 10
        while daemon._ingest_error is None and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(ServiceError, match="ingest thread died"):
            daemon.offer(bad, bad, np.ones(3, dtype=np.int64))
        with pytest.raises(ServiceError, match="ingest thread died"):
            daemon.close()
        assert daemon.closed  # workers were still released
