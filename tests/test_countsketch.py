"""Unit tests for Count sketch and C-Heap."""

import pytest

from repro.analysis.empirical import estimate_moments
from repro.sketches.countsketch import CountSketch, CountSketchHeap


class TestCountSketch:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CountSketch(0, 10)

    def test_exact_without_collisions(self):
        cs = CountSketch(3, 4096, seed=1)
        cs.update(1, 7)
        assert cs.query(1) == 7.0

    def test_two_sided_errors_exist(self, tiny_trace):
        # Unlike CM, Count sketch under- and over-estimates.
        cs = CountSketch(3, 64, seed=2)
        cs.process(iter(tiny_trace))
        errors = [
            cs.query(key) - size
            for key, size in tiny_trace.full_counts().items()
        ]
        assert any(e > 0 for e in errors)
        assert any(e < 0 for e in errors)

    def test_unbiased_across_seeds(self, tiny_trace):
        # Mean estimate over independent sketches ~ true size.
        key, size = max(
            tiny_trace.full_counts().items(), key=lambda kv: kv[1]
        )
        estimates = []
        for seed in range(30):
            cs = CountSketch(1, 128, seed=seed)
            cs.process(iter(tiny_trace))
            estimates.append(cs.query(key))
        mean, var = estimate_moments(estimates)
        halfwidth = 4 * (var / len(estimates)) ** 0.5
        assert abs(mean - size) <= max(halfwidth, 0.05 * size)

    def test_update_and_query_matches_query(self):
        cs = CountSketch(3, 128, seed=2)
        est = None
        for _ in range(5):
            est = cs.update_and_query(42, 2)
        assert est == cs.query(42)

    def test_reset(self):
        cs = CountSketch(2, 16, seed=1)
        cs.update(1, 5)
        cs.reset()
        assert cs.query(1) == 0.0


class TestCountSketchHeap:
    def test_from_memory_budget(self):
        sk = CountSketchHeap.from_memory(64 * 1024, seed=1)
        assert sk.memory_bytes() <= 64 * 1024

    def test_tracks_heavy_flows(self, small_trace):
        sk = CountSketchHeap.from_memory(64 * 1024, seed=3)
        sk.process(iter(small_trace))
        table = sk.flow_table()
        top = sorted(
            small_trace.full_counts().items(), key=lambda kv: -kv[1]
        )[:10]
        hits = sum(1 for key, _ in top if key in table)
        assert hits >= 8
