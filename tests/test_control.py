"""Control-plane suite: elastic geometry + multi-tenant governance.

Five families of guarantees, matching docs/governance.md:

* **Governor decisions** — the occupancy-driven control law is pure and
  deterministic: grow/shrink thresholds, budget/floor clamps, the
  anti-flap shrink veto, resize cool-down and skew-triggered
  repartition all behave exactly as specified.
* **Resize statistics** — grow/shrink re-hash folds preserve Lemma-3
  partial-key unbiasedness, gated through the shared stat harness so
  ``REPRO_STAT_*`` margins apply.
* **Slim/fat consistency** — the slim replica's answers stay bit-exact
  against the fat path across a staged geometry change (the replica
  must re-bootstrap at the new shape rather than apply stale deltas).
* **Tenant isolation** — an adversarial tenant flooding its own
  namespace must not move a quiet tenant's error profile beyond the
  two-sample stat-harness margin, and never leaks packets across the
  namespace boundary.
* **Adaptive gate** — under a workload that shifts mid-run, the
  governed daemon's landed geometry answers within 5% ARE of the best
  hand-tuned static geometry at equal memory (the pytest half of the
  ``--sweep adaptive`` acceptance gate).
"""

import numpy as np
import pytest

from repro.control import (
    Decision,
    GovernorConfig,
    ResourceGovernor,
    Signals,
    TenantManager,
    tenant_assignments,
)
from repro.core.query import FlowTable
from repro.engine.base import buckets_for_memory
from repro.engine.sharded import SketchSpec
from repro.engine.vectorized import NumpyCocoSketch
from repro.flowkeys.key import FIVE_TUPLE
from repro.service import MeasurementDaemon, ServiceConfig
from repro.sketches.base import COUNTER_BYTES, DEFAULT_KEY_BYTES
from repro.traffic.synthetic import caida_like, mawi_like, zipf_trace
from repro.traffic.trace import Trace

from tests.stat_harness import (
    DEFAULT_ABS_FLOOR,
    assert_error_profile,
    assert_partial_key_unbiased_states,
    random_partial_specs,
)

CHUNK = 2048


def make_config(l=512, seed=3, **kw):
    spec = SketchSpec(engine="numpy", variant="basic", d=2, l=l, seed=seed)
    return ServiceConfig(
        spec=spec, key_spec=FIVE_TUPLE, shards=1, chunk=CHUNK, **kw
    )


# -- governor control law ----------------------------------------------


def gov(memory_kb=512, **kw) -> ResourceGovernor:
    return ResourceGovernor(GovernorConfig(memory_bytes=memory_kb * 1024, **kw))


class TestGovernorDecisions:
    def test_grow_on_high_occupancy(self):
        decision = gov().decide(Signals(epoch=0, l=128, occupancy=0.8))
        assert decision.new_l == 256
        assert decision.resized and not decision.repartition
        assert "grow" in decision.reason

    def test_steady_between_thresholds(self):
        decision = gov().decide(Signals(epoch=0, l=128, occupancy=0.5))
        assert decision == Decision()

    def test_grow_clamped_to_budget(self):
        governor = gov(memory_kb=8)
        expected_max = buckets_for_memory(
            8 * 1024, governor.d, governor.key_bytes
        )
        assert governor.max_l == expected_max
        decision = governor.decide(
            Signals(epoch=0, l=expected_max - 1, occupancy=0.95)
        )
        assert decision.new_l == expected_max
        # At the ceiling there is nothing left to grow into.
        assert not governor.decide(
            Signals(epoch=1, l=expected_max, occupancy=0.99)
        ).resized

    def test_shrink_on_low_occupancy(self):
        decision = gov().decide(Signals(epoch=0, l=1024, occupancy=0.1))
        assert decision.new_l == 512
        assert "shrink" in decision.reason

    def test_shrink_clamped_to_floor(self):
        decision = gov(min_l=100, shrink_factor=0.1).decide(
            Signals(epoch=0, l=128, occupancy=0.05)
        )
        assert decision.new_l == 100

    def test_shrink_vetoed_when_projection_would_regrow(self):
        # occupancy 0.25 at l would project to 1.0 at l/4 — re-hashing
        # into the shrunk array would immediately re-trigger a grow, so
        # the governor must hold steady instead of flapping.
        decision = gov(shrink_factor=0.25).decide(
            Signals(epoch=0, l=1024, occupancy=0.25)
        )
        assert not decision.resized

    def test_cooldown_blocks_consecutive_resizes(self):
        governor = gov(cooldown_epochs=2)
        assert governor.decide(Signals(epoch=1, l=128, occupancy=0.9)).resized
        assert not governor.decide(
            Signals(epoch=2, l=256, occupancy=0.9)
        ).resized
        assert governor.decide(Signals(epoch=3, l=256, occupancy=0.9)).resized

    def test_repartition_on_skew(self):
        governor = gov(imbalance_limit=1.5)
        decision = governor.decide(
            Signals(epoch=0, l=128, occupancy=0.5, imbalance=2.0)
        )
        assert decision.repartition and not decision.resized
        assert "repartition" in decision.reason
        assert not governor.decide(
            Signals(epoch=1, l=128, occupancy=0.5, imbalance=1.4)
        ).repartition

    def test_decide_is_deterministic(self):
        signals = Signals(epoch=3, l=256, occupancy=0.85, imbalance=1.1)
        assert gov().decide(signals) == gov().decide(signals)

    def test_memory_at_inverts_budget(self):
        governor = gov(memory_kb=64)
        assert governor.memory_at(governor.max_l) <= 64 * 1024
        assert (
            governor.memory_at(governor.max_l + 1) > 64 * 1024
        )

    @pytest.mark.parametrize(
        "kw",
        [
            {"memory_bytes": 0},
            {"memory_bytes": 1 << 20, "min_l": 0},
            {"memory_bytes": 1 << 20, "grow_occupancy": 0.2,
             "shrink_occupancy": 0.4},
            {"memory_bytes": 1 << 20, "grow_factor": 1.0},
            {"memory_bytes": 1 << 20, "shrink_factor": 1.5},
            {"memory_bytes": 1 << 20, "imbalance_limit": -1},
            {"memory_bytes": 1 << 20, "cooldown_epochs": -1},
        ],
    )
    def test_config_validation(self, kw):
        with pytest.raises(ValueError):
            GovernorConfig(**kw)

    def test_floor_above_budget_rejected(self):
        bucket = 2 * (DEFAULT_KEY_BYTES + COUNTER_BYTES)
        with pytest.raises(ValueError, match="exceeds the budget"):
            ResourceGovernor(
                GovernorConfig(memory_bytes=10 * bucket, min_l=100), d=2
            )


# -- resize preserves Lemma-3 unbiasedness ------------------------------

RESIZE_TRACE = zipf_trace(12_000, 2_500, alpha=1.1, seed=7)
RESIZE_SPECS = random_partial_specs(2, seed=3)


class TestResizeUnbiasedness:
    @pytest.mark.parametrize("spec", RESIZE_SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("path", ["grow", "shrink", "round-trip"])
    def test_resize_preserves_partial_key_unbiasedness(self, spec, path):
        def make_state(seed):
            sketch = NumpyCocoSketch(d=2, l=512, seed=seed)
            sketch.process(RESIZE_TRACE)
            if path in ("grow", "round-trip"):
                sketch.resize(1024, seed=seed + 101)
            if path in ("shrink", "round-trip"):
                sketch.resize(256, seed=seed + 202)
            return sketch

        assert_partial_key_unbiased_states(
            make_state,
            RESIZE_TRACE,
            spec,
            trials=12,
            base_seed=50,
            label=f"resized ({path})",
        )


# -- slim replica stays bit-exact across a geometry change --------------


class TestSlimFatAcrossResize:
    def test_slim_matches_fat_across_staged_resize(self):
        trace = zipf_trace(9_000, 1_800, alpha=1.1, seed=11)
        daemon = MeasurementDaemon(make_config(l=256))
        blocks = list(trace.batches(1500))
        try:
            for hi, lo, sizes in blocks[:2]:
                daemon.ingest(hi, lo, sizes)
            daemon.rotate()
            # Warm the slim path at the old shape so the resize really
            # exercises invalidation, not a cold first bootstrap.
            daemon.live_planner("slim")
            daemon.set_geometry(1024)
            for hi, lo, sizes in blocks[2:4]:
                daemon.ingest(hi, lo, sizes)
            daemon.rotate()  # staged geometry lands here
            assert daemon.spec.l == 1024
            for hi, lo, sizes in blocks[4:]:
                daemon.ingest(hi, lo, sizes)

            def assert_bit_exact():
                (_, slim) = daemon.live_planner("slim")
                (_, fat) = daemon.live_planner("fat")
                for spec in random_partial_specs(3, seed=5):
                    slim_table = slim.table(spec)
                    fat_table = fat.table(spec)
                    assert slim_table.top_k(25) == fat_table.top_k(25)
                    for key, value in fat_table.top_k(25):
                        assert slim_table.lookup(key) == value

            assert_bit_exact()

            # Empty-epoch path: a staged resize with no traffic swaps
            # the builder in place, which must *invalidate* the replica
            # (same epoch tag, new shape).
            daemon.rotate()
            daemon.live_planner("slim")
            daemon.set_geometry(512)
            daemon.rotate()
            assert daemon.spec.l == 512
            assert_bit_exact()

            counters = daemon.metrics_snapshot()["counters"]
            assert counters.get("slim.invalidations", 0) >= 1
            assert counters.get("slim.geometry.rebootstraps", 0) >= 1
            assert counters.get("control.resizes", 0) >= 2
        finally:
            daemon.close()


# -- noisy-tenant isolation ---------------------------------------------


def _tenant_subtrace(trace: Trace, spec_seed: int, index: int, n=2) -> Trace:
    """The packets the router will hand to tenant *index*."""
    hi, lo, _sizes = next(trace.batches(len(trace)))
    assign = tenant_assignments(hi, lo, n, spec_seed)
    keys = [trace.keys[i] for i in np.nonzero(assign == index)[0]]
    return Trace(FIVE_TUPLE, keys, name=f"tenant{index}")


class TestTenantIsolation:
    BUDGET = 1 << 20  # 1 MiB joint budget: quiet stays over-provisioned
    PSPEC = FIVE_TUPLE.partial(("SrcIP", 16))

    def _quiet_are(self, seed: int, adversarial: bool) -> float:
        base = zipf_trace(10_000, 1_600, alpha=1.1, seed=seed)
        spec_seed = seed + 17
        config = make_config(
            l=256,
            seed=spec_seed,
            tenants=("quiet", "noisy"),
            tenant_memory_bytes=self.BUDGET,
        )
        quiet_trace = _tenant_subtrace(base, spec_seed, index=0)
        noise = None
        if adversarial:
            flood = mawi_like(10_000, 400, seed=seed + 99)
            noise = _tenant_subtrace(flood, spec_seed, index=1)
        daemon = MeasurementDaemon(config)
        try:
            base_blocks = list(base.batches(2000))
            noise_blocks = (
                list(noise.batches(2000)) if noise is not None else []
            )
            for i, (hi, lo, sizes) in enumerate(base_blocks):
                daemon.ingest(hi, lo, sizes)
                # The adversary floods 4x its fair share of packets.
                for hj, lj, sj in noise_blocks:
                    daemon.ingest(hj, lj, sj)
                if i % 2 == 1:
                    daemon.rotate()  # rebalances the tenant plane
            quiet = daemon.tenant_daemon("quiet")
            # Structural isolation: the quiet namespace saw exactly its
            # own packets, flood or no flood.
            assert quiet.status()["total_packets"] == len(quiet_trace)
            (_, planner) = quiet.live_planner(None)
            table = planner.table(self.PSPEC)
            truth = quiet_trace.ground_truth(self.PSPEC)
            ranked = sorted(truth.items(), key=lambda kv: -kv[1])[:12]
            return float(
                np.mean(
                    [abs(table.lookup(k) - v) / v for k, v in ranked]
                )
            )
        finally:
            daemon.close()

    def test_noisy_neighbour_cannot_move_quiet_tenant_error(self):
        seeds = range(6)
        baseline = [self._quiet_are(s, adversarial=False) for s in seeds]
        flooded = [self._quiet_are(s, adversarial=True) for s in seeds]
        assert_error_profile(
            flooded, baseline, label="quiet tenant under noisy neighbour"
        )

    def test_unknown_tenant_and_routing_purity(self):
        config = make_config(
            tenants=("a", "b"), tenant_memory_bytes=self.BUDGET
        )
        daemon = MeasurementDaemon(config)
        try:
            with pytest.raises(KeyError):
                daemon.tenant_daemon("missing")
            trace = zipf_trace(4_000, 800, alpha=1.1, seed=2)
            for hi, lo, sizes in trace.batches(1000):
                daemon.ingest(hi, lo, sizes)
            # Flow-purity: every packet lands in exactly one namespace.
            assert (
                daemon.tenant_daemon("a").status()["total_packets"]
                + daemon.tenant_daemon("b").status()["total_packets"]
                == len(trace)
            )
        finally:
            daemon.close()


# -- adaptive gate: governed vs best static at equal memory -------------


def _shifting_trace(seed: int) -> Trace:
    head = caida_like(24_000, 3_500, seed=seed)
    tail = mawi_like(24_000, 1_200, seed=seed + 1)
    return Trace(FIVE_TUPLE, head.keys + tail.keys, name="shifting")


def _range_are(daemon, epochs, pspec, truth, top=30) -> float:
    table = daemon.range_planner(epochs[0], epochs[-1]).table(pspec)
    ranked = sorted(truth.items(), key=lambda kv: -kv[1])[:top]
    return float(
        np.mean([abs(table.lookup(k) - v) / v for k, v in ranked])
    )


class TestAdaptiveGate:
    MEMORY = 64 * 1024
    EPOCH_PACKETS = 6_000

    def _run(self, trace, governed: bool):
        best_l = buckets_for_memory(self.MEMORY, 2, DEFAULT_KEY_BYTES)
        if governed:
            config = make_config(
                l=max(64, best_l // 8),
                epoch_packets=self.EPOCH_PACKETS,
                governor=GovernorConfig(memory_bytes=self.MEMORY),
            )
        else:
            config = make_config(
                l=best_l, epoch_packets=self.EPOCH_PACKETS
            )
        daemon = MeasurementDaemon(config)
        for hi, lo, sizes in trace.batches(CHUNK):
            daemon.ingest(hi, lo, sizes)
        daemon.close()
        return daemon

    def test_governor_within_five_percent_of_best_static(self):
        pspec = FIVE_TUPLE.partial(("SrcIP", 16))
        governed_errors, static_errors = [], []
        for seed in (21, 22, 23):
            trace = _shifting_trace(seed)
            governed = self._run(trace, governed=True)
            static = self._run(trace, governed=False)
            counters = governed.metrics_snapshot()["counters"]
            # The gate is vacuous unless the governor actually acted.
            assert counters.get("control.governor.resizes", 0) >= 1
            # Evaluate the landed geometry: the post-shift epochs.
            ids = governed.store.ids()
            assert ids == static.store.ids()
            eval_ids = [
                e for e in ids
                if governed.store.get(e).start_seq >= len(trace) // 2
            ]
            start = min(
                governed.store.get(e).start_seq for e in eval_ids
            )
            window = trace.slice(start, len(trace))
            truth = window.ground_truth(pspec)
            governed_errors.append(
                _range_are(governed, eval_ids, pspec, truth)
            )
            static_errors.append(
                _range_are(static, eval_ids, pspec, truth)
            )
        governed_mean = float(np.mean(governed_errors))
        static_mean = float(np.mean(static_errors))
        assert governed_mean <= 1.05 * static_mean + DEFAULT_ABS_FLOOR, (
            f"governed ARE {governed_mean:.4f} vs static "
            f"{static_mean:.4f} (limit 5% + {DEFAULT_ABS_FLOOR})"
        )


# -- tenant manager unit behaviour --------------------------------------


class TestTenantManager:
    def test_shares_track_weight_with_reserve_floor(self):
        config = make_config(tenants=None)
        manager = TenantManager(
            ["a", "b"], config, memory_bytes=1 << 20
        )
        try:
            assert manager.shares() == pytest.approx([0.5, 0.5])
            trace = zipf_trace(4_000, 500, alpha=1.1, seed=9)
            hi, lo, sizes = next(trace.batches(len(trace)))
            manager.route(hi, lo, sizes)
            manager.on_parent_rotate()
            shares = manager.shares()
            assert sum(shares) == pytest.approx(1.0)
            # Nobody ever drops below the guaranteed reserve.
            assert all(s >= manager.reserve - 1e-9 for s in shares)
        finally:
            manager.close()

    def test_validation(self):
        config = make_config(tenants=None)
        with pytest.raises(ValueError, match="unique"):
            TenantManager(["a", "a"], config, memory_bytes=1 << 20)
        with pytest.raises(ValueError, match="at least one"):
            TenantManager([], config, memory_bytes=1 << 20)
        with pytest.raises(ValueError, match="too small"):
            TenantManager(["a", "b"], config, memory_bytes=64)

    def test_assignments_are_flow_pure_and_salted(self):
        trace = zipf_trace(3_000, 400, alpha=1.1, seed=4)
        hi, lo, _sizes = next(trace.batches(len(trace)))
        assign = tenant_assignments(hi, lo, 3, seed=1)
        # Same flow key -> same tenant, always.
        fold = {}
        for i, key in enumerate(trace.keys):
            fold.setdefault(key, assign[i])
            assert fold[key] == assign[i]
        # Different seeds draw different partitions.
        other = tenant_assignments(hi, lo, 3, seed=2)
        assert (assign != other).any()
