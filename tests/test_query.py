"""Unit tests for the control-plane query front-end (§4.3)."""

import pytest

from repro.core.cocosketch import BasicCocoSketch
from repro.core.query import FlowTable, partial_key_report
from repro.flowkeys.key import FIVE_TUPLE, paper_partial_keys


def _key(src, dst=1, sport=1, dport=1, proto=6):
    return FIVE_TUPLE.pack(src, dst, sport, dport, proto)


class TestFlowTable:
    def test_query_and_total(self):
        table = FlowTable({1: 10.0, 2: 5.0}, FIVE_TUPLE)
        assert table.query(1) == 10.0
        assert table.query(99) == 0.0
        assert table.total == 15.0
        assert len(table) == 2

    def test_aggregate_groups_by_mapping(self):
        sizes = {
            _key(0x0A000001, sport=80): 10.0,
            _key(0x0A000001, sport=443): 5.0,
            _key(0x0B000001): 7.0,
        }
        table = FlowTable(sizes, FIVE_TUPLE)
        srcip = FIVE_TUPLE.partial("SrcIP")
        agg = table.aggregate(srcip)
        assert agg.sizes == {0x0A000001: 15.0, 0x0B000001: 7.0}
        assert agg.spec == srcip

    def test_aggregate_preserves_total(self, small_trace, six_keys):
        sk = BasicCocoSketch.from_memory(64 * 1024, seed=1)
        sk.process(iter(small_trace))
        table = FlowTable.from_sketch(sk, FIVE_TUPLE)
        for pk in six_keys:
            assert table.aggregate(pk).total == pytest.approx(table.total)

    def test_aggregate_identity_partial_copies(self):
        table = FlowTable({1: 2.0}, FIVE_TUPLE)
        agg = table.aggregate(FIVE_TUPLE.identity_partial())
        assert agg.sizes == {1: 2.0}
        assert agg.sizes is not table.sizes

    def test_aggregate_foreign_spec_rejected(self):
        from repro.flowkeys.fields import Field
        from repro.flowkeys.key import FullKeySpec

        other = FullKeySpec((Field("x", 8),))
        table = FlowTable({1: 2.0}, FIVE_TUPLE)
        with pytest.raises(ValueError):
            table.aggregate(other.partial("x"))

    def test_heavy_hitters_threshold(self):
        table = FlowTable({1: 10.0, 2: 5.0, 3: 1.0}, FIVE_TUPLE)
        assert table.heavy_hitters(5.0) == {1: 10.0, 2: 5.0}
        with pytest.raises(ValueError):
            table.heavy_hitters(-1)

    def test_top_k_descending(self):
        table = FlowTable({1: 10.0, 2: 5.0, 3: 7.0}, FIVE_TUPLE)
        assert table.top_k(2) == [(1, 10.0), (3, 7.0)]
        assert table.top_k(0) == []
        with pytest.raises(ValueError):
            table.top_k(-1)

    def test_group_by_sql_semantics(self):
        # SELECT g(k), SUM(size) GROUP BY g(k) with g = parity
        table = FlowTable({0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0}, FIVE_TUPLE)
        agg = table.group_by(lambda k: k % 2)
        assert agg.sizes == {0: 4.0, 1: 6.0}


class TestPartialKeyReport:
    def test_report_covers_all_keys(self, small_trace):
        sk = BasicCocoSketch.from_memory(64 * 1024, seed=2)
        sk.process(iter(small_trace))
        keys = paper_partial_keys(3)
        report = partial_key_report(sk, FIVE_TUPLE, keys)
        assert set(report) == {pk.name for pk in keys}

    def test_report_threshold_filters(self, small_trace):
        sk = BasicCocoSketch.from_memory(64 * 1024, seed=2)
        sk.process(iter(small_trace))
        keys = paper_partial_keys(2)
        thr = 0.001 * small_trace.total_size
        report = partial_key_report(sk, FIVE_TUPLE, keys, threshold=thr)
        for table in report.values():
            assert all(v >= thr for v in table.values())


class TestCombined:
    def test_sums_over_union_of_keys(self):
        a = FlowTable({1: 10.0, 2: 5.0}, FIVE_TUPLE, name="w1")
        b = FlowTable({2: 3.0, 3: 7.0}, FIVE_TUPLE, name="w2")
        combined = a.combined(b)
        assert combined.sizes == {1: 10.0, 2: 8.0, 3: 7.0}
        assert combined.name == "w1+w2"

    def test_rejects_spec_mismatch(self):
        from repro.flowkeys.fields import Field
        from repro.flowkeys.key import FullKeySpec

        other_spec = FullKeySpec((Field("x", 8),))
        a = FlowTable({1: 1.0}, FIVE_TUPLE)
        b = FlowTable({1: 1.0}, other_spec)
        with pytest.raises(ValueError):
            a.combined(b)

    def test_inputs_untouched(self):
        a = FlowTable({1: 1.0}, FIVE_TUPLE)
        b = FlowTable({1: 2.0}, FIVE_TUPLE)
        a.combined(b)
        assert a.sizes == {1: 1.0}
        assert b.sizes == {1: 2.0}
