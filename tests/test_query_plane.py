"""Columnar query plane: equality with the scalar path, edge cases.

The refactor's acceptance bar is *exactness*: for every backend and
every partial key, the columnar FlowTable must produce the same keys
and the same float values as the pre-refactor scalar path (dict walk
with ``PartialKeySpec.mapper``).  Sketch estimates are integer or
half-integer floats far below 2**52, so float64 summation is exact in
any order — these tests enforce that the implementation actually
delivers it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import FlowTable, partial_key_report
from repro.engine import ShardedSketch, SketchSpec, get_engine
from repro.flowkeys.key import (
    FIVE_TUPLE,
    IPV6_FIVE_TUPLE,
    PartialKeySpec,
    paper_partial_keys,
    prefix_hierarchy,
)
from repro.flowkeys.columns import pack_key_words
from repro.query import ColumnTable, QueryPlanner, project_words
from repro.query.project import ProjectionPlan

from tests.stat_harness import random_partial_specs


def scalar_aggregate(sizes, partial):
    """The pre-refactor reference: dict walk under the scalar mapper."""
    g = partial.mapper()
    out = {}
    for key, size in sizes.items():
        mapped = g(key)
        out[mapped] = out.get(mapped, 0.0) + size
    return out


def _specs():
    return random_partial_specs(12, seed=7) + paper_partial_keys(6)


# -- backend equality ---------------------------------------------------


def _backends(small_trace):
    scalar = get_engine("scalar").cocosketch_from_memory(64 * 1024, seed=3)
    scalar.process(iter(small_trace))
    vec = get_engine("numpy").cocosketch_from_memory(64 * 1024, seed=3)
    vec.process(small_trace)
    hardware = get_engine("numpy").hardware_cocosketch_from_memory(
        64 * 1024, seed=3
    )
    hardware.process(small_trace)
    sharded = ShardedSketch(
        SketchSpec.from_memory(48 * 1024, engine="numpy", seed=3),
        shards=3,
        processes=False,
    )
    sharded.process(small_trace)
    return {
        "scalar": scalar,
        "numpy": vec,
        "numpy-hardware": hardware,
        "sharded": sharded,
    }


class TestBackendEquality:
    @pytest.fixture(scope="class")
    def backends(self, small_trace):
        return _backends(small_trace)

    @pytest.mark.parametrize(
        "backend", ["scalar", "numpy", "numpy-hardware", "sharded"]
    )
    def test_full_table_matches_flow_table(self, backends, backend):
        sketch = backends[backend]
        table = FlowTable.from_sketch(sketch, FIVE_TUPLE)
        assert table.sizes == sketch.flow_table()

    @pytest.mark.parametrize(
        "backend", ["scalar", "numpy", "numpy-hardware", "sharded"]
    )
    def test_aggregation_matches_scalar_path(self, backends, backend):
        sketch = backends[backend]
        reference = sketch.flow_table()
        table = FlowTable.from_sketch(sketch, FIVE_TUPLE)
        for partial in _specs():
            expected = scalar_aggregate(reference, partial)
            got = table.aggregate(partial).sizes
            assert got == expected, partial.name

    @pytest.mark.parametrize(
        "backend", ["scalar", "numpy", "numpy-hardware", "sharded"]
    )
    def test_planner_matches_scalar_path(self, backends, backend):
        sketch = backends[backend]
        reference = sketch.flow_table()
        planner = QueryPlanner(sketch, FIVE_TUPLE)
        for partial in _specs():
            assert planner.sizes(partial) == scalar_aggregate(
                reference, partial
            ), partial.name


# -- vectorised g(.): bit-identical to the scalar map -------------------


def _partial_strategy(spec):
    """Random non-empty field subsets with random bit-prefix lengths."""

    @st.composite
    def strat(draw):
        parts = []
        for field in spec.fields:
            prefix = draw(st.integers(0, field.width))
            if draw(st.booleans()):
                parts.append((field.name, prefix))
        if not parts:
            field = spec.fields[draw(st.integers(0, len(spec.fields) - 1))]
            parts = [(field.name, draw(st.integers(0, field.width)))]
        return PartialKeySpec(spec, tuple(parts))

    return strat()


def _keys_strategy(spec):
    return st.lists(
        st.integers(0, (1 << spec.width) - 1), min_size=1, max_size=40
    )


class TestProjectionProperty:
    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_ipv4_matches_scalar_map(self, data):
        self._check(FIVE_TUPLE, data)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_ipv6_matches_scalar_map(self, data):
        self._check(IPV6_FIVE_TUPLE, data)

    @staticmethod
    def _check(spec, data):
        partial = data.draw(_partial_strategy(spec))
        keys = data.draw(_keys_strategy(spec))
        words = pack_key_words(keys, spec.width)
        projected = project_words(words, partial)
        got = []
        for col in range(projected.shape[1]):
            value = 0
            for w in range(projected.shape[0] - 1, -1, -1):
                value = (value << 64) | int(projected[w, col])
            got.append(value)
        assert got == [partial.map(k) for k in keys]

    def test_zero_width_projection_collapses(self):
        partial = PartialKeySpec(FIVE_TUPLE, (("SrcIP", 0),))
        keys = [FIVE_TUPLE.pack(i, 0, 0, 0, 0) for i in range(10)]
        words = pack_key_words(keys, FIVE_TUPLE.width)
        projected = project_words(words, partial)
        assert projected.shape == (1, 10)
        assert not projected.any()

    def test_plan_is_reusable(self):
        partial = FIVE_TUPLE.partial(("SrcIP", 24), "DstPort")
        plan = ProjectionPlan.compile(partial)
        keys = [FIVE_TUPLE.pack(10 << 24 | i, 0, 0, 443, 6) for i in range(8)]
        words = pack_key_words(keys, FIVE_TUPLE.width)
        first = plan.apply(words)
        second = plan.apply(words)
        assert (first == second).all()


# -- FlowTable edge cases (satellite: aggregate/combined corner cases) --


class TestFlowTableEdgeCases:
    def test_empty_table_aggregates_empty(self):
        table = FlowTable({}, FIVE_TUPLE)
        agg = table.aggregate(FIVE_TUPLE.partial("SrcIP"))
        assert len(agg) == 0
        assert agg.sizes == {}
        assert agg.total == 0.0
        assert agg.heavy_hitters(1.0) == {}
        assert agg.top_k(5) == []

    def test_empty_column_table_roundtrip(self):
        table = FlowTable.from_columns(ColumnTable.empty(FIVE_TUPLE))
        assert table.sizes == {}
        assert table.query(123) == 0.0

    def test_combined_disjoint_tables_unions(self):
        key_a = FIVE_TUPLE.pack(1, 2, 3, 4, 6)
        key_b = FIVE_TUPLE.pack(9, 8, 7, 6, 17)
        a = FlowTable({key_a: 5.0}, FIVE_TUPLE, name="a")
        b = FlowTable({key_b: 7.0}, FIVE_TUPLE, name="b")
        merged = a.combined(b)
        assert merged.sizes == {key_a: 5.0, key_b: 7.0}
        assert merged.name == "a+b"

    def test_combined_with_empty_is_identity(self):
        key = FIVE_TUPLE.pack(1, 2, 3, 4, 6)
        a = FlowTable({key: 5.0}, FIVE_TUPLE)
        assert a.combined(FlowTable({}, FIVE_TUPLE)).sizes == {key: 5.0}
        assert FlowTable({}, FIVE_TUPLE).combined(a).sizes == {key: 5.0}

    def test_combined_overlapping_sums(self):
        key = FIVE_TUPLE.pack(1, 2, 3, 4, 6)
        other = FIVE_TUPLE.pack(5, 6, 7, 8, 17)
        a = FlowTable({key: 5.0, other: 1.0}, FIVE_TUPLE)
        b = FlowTable({key: 2.5}, FIVE_TUPLE)
        assert a.combined(b).sizes == {key: 7.5, other: 1.0}

    def test_combined_spec_mismatch_raises(self):
        a = FlowTable({}, FIVE_TUPLE)
        b = FlowTable({}, FIVE_TUPLE.partial("SrcIP"))
        with pytest.raises(ValueError):
            a.combined(b)

    def test_all_colliding_projection_sums_everything(self):
        sizes = {
            FIVE_TUPLE.pack(i, i + 1, i + 2, i + 3, 6): float(i + 1)
            for i in range(10)
        }
        table = FlowTable(sizes, FIVE_TUPLE)
        collapsed = table.aggregate(PartialKeySpec(FIVE_TUPLE, (("SrcIP", 0),)))
        assert collapsed.sizes == {0: sum(sizes.values())}
        assert collapsed.query(0) == sum(sizes.values())

    def test_aggregate_wrong_spec_raises(self):
        table = FlowTable({}, FIVE_TUPLE)
        with pytest.raises(ValueError):
            table.aggregate(IPV6_FIVE_TUPLE.partial("SrcIPv6"))

    def test_full_aggregate_is_copy(self):
        key = FIVE_TUPLE.pack(1, 2, 3, 4, 6)
        table = FlowTable({key: 5.0}, FIVE_TUPLE)
        full = table.aggregate(
            FIVE_TUPLE.partial(*(f.name for f in FIVE_TUPLE.fields))
        )
        assert full.sizes == {key: 5.0}

    def test_heavy_hitters_and_top_k_validate(self):
        table = FlowTable({}, FIVE_TUPLE)
        with pytest.raises(ValueError):
            table.heavy_hitters(-1.0)
        with pytest.raises(ValueError):
            table.top_k(-1)


# -- planner behaviour --------------------------------------------------


class TestPlanner:
    def test_extraction_happens_once_and_memoizes(self, small_trace):
        sketch = get_engine("numpy").cocosketch_from_memory(32 * 1024, seed=1)
        sketch.process(small_trace)
        planner = QueryPlanner(sketch, FIVE_TUPLE)
        specs = prefix_hierarchy(FIVE_TUPLE, "SrcIP", granularity=8)
        for partial in specs:
            planner.table(partial)
        for partial in specs:
            planner.table(partial)
        info = planner.cache_info()
        assert info["misses"] == len(specs)
        assert info["hits"] == len(specs)
        assert info["cached_specs"] == len(specs)

    def test_invalidate_drops_cache(self, tiny_trace):
        sketch = get_engine("scalar").cocosketch_from_memory(16 * 1024, seed=1)
        sketch.process(iter(tiny_trace))
        planner = QueryPlanner(sketch, FIVE_TUPLE)
        partial = FIVE_TUPLE.partial("SrcIP")
        before = planner.sizes(partial)
        sketch.process(iter(tiny_trace))
        planner.invalidate()
        after = planner.sizes(partial)
        assert after != before
        assert planner.cache_info()["cached_specs"] == 1

    def test_planner_over_column_table(self):
        sizes = {
            FIVE_TUPLE.pack(i, 0, 0, 80, 6): float(i + 1) for i in range(50)
        }
        planner = QueryPlanner(
            ColumnTable.from_dict(sizes, FIVE_TUPLE), FIVE_TUPLE
        )
        partial = FIVE_TUPLE.partial(("SrcIP", 32))
        assert planner.sizes(partial) == scalar_aggregate(sizes, partial)

    def test_partial_key_report_threshold(self, tiny_trace):
        sketch = get_engine("numpy").cocosketch_from_memory(32 * 1024, seed=2)
        sketch.process(tiny_trace)
        keys = [FIVE_TUPLE.partial("SrcIP"), FIVE_TUPLE.partial(("SrcIP", 8))]
        report = partial_key_report(sketch, FIVE_TUPLE, keys, threshold=10.0)
        reference = sketch.flow_table()
        for partial in keys:
            expected = {
                k: v
                for k, v in scalar_aggregate(reference, partial).items()
                if v >= 10.0
            }
            assert report[partial.name] == expected


# -- obs integration ----------------------------------------------------


class TestObsIntegration:
    def test_planner_emits_counters_and_spans(self, tiny_trace):
        from repro.obs.registry import MetricsRegistry, set_registry

        sketch = get_engine("numpy").cocosketch_from_memory(16 * 1024, seed=4)
        sketch.process(tiny_trace)
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            planner = QueryPlanner(sketch, FIVE_TUPLE)
            partial = FIVE_TUPLE.partial(("SrcIP", 16))
            planner.table(partial)
            planner.table(partial)
        finally:
            set_registry(previous)
        snap = registry.snapshot()
        assert snap["counters"]["query.extractions"] == 1
        assert snap["counters"]["query.cache.misses"] == 1
        assert snap["counters"]["query.cache.hits"] == 1
        assert "query.extract" in snap["spans"]
        assert "query.aggregate" in snap["spans"]
        assert "query.groupby.rows" in snap["histograms"]


# -- SQL executor: vectorised path equals scalar reference -------------


class TestSqlColumnarEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_predicate_mask_matches_scalar(self, data):
        from repro.core.sql import _Predicate

        fields = FIVE_TUPLE.fields
        field = fields[data.draw(st.integers(0, len(fields) - 1))]
        prefix = data.draw(
            st.one_of(st.none(), st.integers(0, field.width))
        )
        op = data.draw(st.sampled_from(["=", "!=", ">", "<", ">=", "<="]))
        value = data.draw(st.integers(0, (1 << field.width) + 3))
        predicate = _Predicate(field.name, prefix, op, value)
        keys = data.draw(
            st.lists(
                st.integers(0, (1 << FIVE_TUPLE.width) - 1),
                min_size=1,
                max_size=30,
            )
        )
        words = pack_key_words(keys, FIVE_TUPLE.width)
        mask = predicate.mask(FIVE_TUPLE, words)
        expected = [predicate.matches(FIVE_TUPLE, k) for k in keys]
        assert mask.tolist() == expected

    def test_run_query_matches_dict_reference(self, tiny_trace):
        from repro.core.sql import run_query

        sketch = get_engine("numpy").cocosketch_from_memory(32 * 1024, seed=6)
        sketch.process(tiny_trace)
        table = FlowTable.from_sketch(sketch, FIVE_TUPLE)
        rows = dict(
            run_query(
                "SELECT SrcIP/16, SUM(size) FROM flows "
                "WHERE Proto = 6 GROUP BY SrcIP/16",
                table,
            )
        )
        partial = FIVE_TUPLE.partial(("SrcIP", 16))
        g = partial.mapper()
        proto_shift = FIVE_TUPLE.shift_of("Proto")
        expected = {}
        for key, size in sketch.flow_table().items():
            if (key >> proto_shift) & 0xFF != 6:
                continue
            mapped = g(key)
            expected[mapped] = expected.get(mapped, 0.0) + size
        assert rows == expected


# -- ColumnTable unit behaviour ----------------------------------------


class TestColumnTable:
    def test_group_sums_duplicates(self):
        words = np.array([[5, 5, 9]], dtype=np.uint64)
        values = np.array([1.0, 2.0, 4.0])
        table = ColumnTable(FIVE_TUPLE.partial(("SrcIP", 4)), words, values)
        grouped = table.group()
        assert grouped.to_dict() == {5: 3.0, 9: 4.0}
        assert grouped.grouped

    def test_lookup_multiword(self):
        sizes = {(1 << 200) | 7: 3.0, 42: 1.5}
        spec = IPV6_FIVE_TUPLE
        table = ColumnTable.from_dict(sizes, spec)
        assert table.lookup((1 << 200) | 7) == 3.0
        assert table.lookup(42) == 1.5
        assert table.lookup(43) == 0.0

    def test_top_k_orders_descending(self):
        sizes = {
            FIVE_TUPLE.pack(i, 0, 0, 0, 0): float(i) for i in range(1, 6)
        }
        table = ColumnTable.from_dict(sizes, FIVE_TUPLE)
        top = table.top_k(3)
        assert [v for _, v in top] == [5.0, 4.0, 3.0]
        assert table.top_k(0) == []
        assert len(table.top_k(99)) == 5

    def test_scaled_and_concat(self):
        key = FIVE_TUPLE.pack(1, 2, 3, 4, 6)
        a = ColumnTable.from_dict({key: 5.0}, FIVE_TUPLE)
        b = ColumnTable.from_dict({key: 2.0}, FIVE_TUPLE)
        diff = a.concat(b.scaled(-1.0)).group()
        assert diff.to_dict() == {key: 3.0}

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ColumnTable(
                FIVE_TUPLE,
                np.zeros((2, 3), dtype=np.uint64),
                np.zeros(2),
            )
