"""Tests for the exponentially decayed CocoSketch extension."""

import pytest

from repro.extensions.decay import DecayedCocoSketch


class TestDecayedCocoSketch:
    def test_validation(self):
        with pytest.raises(ValueError):
            DecayedCocoSketch(d=0)
        with pytest.raises(ValueError):
            DecayedCocoSketch(decay=0.0)
        with pytest.raises(ValueError):
            DecayedCocoSketch(decay=1.5)
        sk = DecayedCocoSketch()
        with pytest.raises(ValueError):
            sk.tick(-1)

    def test_no_ticks_behaves_like_plain(self):
        sk = DecayedCocoSketch(d=2, l=32, decay=0.5, seed=1)
        for _ in range(10):
            sk.update(7, 3)
        assert sk.query(7) == 30.0

    def test_tick_halves_estimates(self):
        sk = DecayedCocoSketch(d=2, l=32, decay=0.5, seed=1)
        sk.update(7, 16)
        sk.tick()
        assert sk.query(7) == pytest.approx(8.0)
        sk.tick(2)
        assert sk.query(7) == pytest.approx(2.0)

    def test_decay_one_is_identity(self):
        sk = DecayedCocoSketch(d=2, l=32, decay=1.0, seed=1)
        sk.update(7, 10)
        sk.tick(100)
        assert sk.query(7) == 10.0

    def test_lazy_decay_applied_on_update(self):
        sk = DecayedCocoSketch(d=1, l=4, decay=0.5, seed=1)
        sk.update(1, 8)
        sk.tick()
        sk.update(1, 1)  # settles to 4, then +1
        assert sk.query(1) == pytest.approx(5.0)

    def test_recent_flow_outranks_old_giant(self):
        sk = DecayedCocoSketch(d=2, l=64, decay=0.25, seed=2)
        for _ in range(100):
            sk.update(1, 1)  # old giant
        sk.tick(3)  # giant decays to ~1.6
        for _ in range(20):
            sk.update(2, 1)  # fresh flow
        table = sk.flow_table()
        assert table.get(2, 0.0) > table.get(1, 0.0)

    def test_flow_table_consistent_with_queries(self):
        sk = DecayedCocoSketch(d=2, l=64, decay=0.9, seed=3)
        for key in range(50):
            sk.update(key, key + 1)
        sk.tick()
        table = sk.flow_table()
        for key, value in table.items():
            assert sk.query(key) == pytest.approx(value)

    def test_reset(self):
        sk = DecayedCocoSketch(d=2, l=16, decay=0.5, seed=1)
        sk.update(1, 4)
        sk.tick()
        sk.reset()
        assert sk.epoch == 0
        assert sk.flow_table() == {}
