"""Tests for the WavingSketch and HashPipe baselines."""

import pytest

from repro.analysis.empirical import estimate_moments, mean_confidence_halfwidth
from repro.sketches.hashpipe import HashPipe
from repro.sketches.wavingsketch import WavingSketch
from repro.traffic.synthetic import zipf_trace


class TestWavingSketch:
    def test_validation(self):
        with pytest.raises(ValueError):
            WavingSketch(0)
        with pytest.raises(ValueError):
            WavingSketch(4, cells=0)
        with pytest.raises(ValueError):
            WavingSketch.from_memory(8)

    def test_tracked_item_exact_when_error_free(self):
        sk = WavingSketch(buckets=64, cells=4, seed=1)
        for _ in range(100):
            sk.update(7, 2)
        assert sk.query(7) == 200.0

    def test_small_items_live_in_waving_counter(self):
        sk = WavingSketch(buckets=1, cells=2, seed=1)
        sk.update(1, 100)
        sk.update(2, 100)
        sk.update(3, 1)  # heavy full, estimate 1 < 100 -> waved only
        table = sk.flow_table()
        assert set(table) == {1, 2}

    def test_large_newcomer_displaces_smallest(self):
        sk = WavingSketch(buckets=1, cells=2, seed=1)
        sk.update(1, 100)
        sk.update(2, 5)
        for _ in range(60):
            sk.update(3, 1)
        table = sk.flow_table()
        assert 1 in table  # the giant survives
        assert 3 in table or sk.query(3) > 0

    def test_heavy_flows_found(self, small_trace):
        sk = WavingSketch.from_memory(64 * 1024, seed=2)
        sk.process(iter(small_trace))
        table = sk.flow_table()
        top = sorted(
            small_trace.full_counts().items(), key=lambda kv: -kv[1]
        )[:10]
        hits = sum(1 for key, _ in top if key in table)
        assert hits >= 9

    def test_unbiased_for_displaced_items(self):
        # Estimates for a mid-sized flow across seeds: mean ~ truth.
        trace = zipf_trace(4_000, 500, alpha=1.1, seed=31)
        packets = list(trace)
        key, size = sorted(
            trace.full_counts().items(), key=lambda kv: -kv[1]
        )[30]
        estimates = []
        for seed in range(40):
            sk = WavingSketch(buckets=64, cells=4, seed=seed)
            sk.process(packets)
            estimates.append(sk.query(key))
        mean, _ = estimate_moments(estimates)
        half = mean_confidence_halfwidth(estimates, z=4.0)
        assert abs(mean - size) <= max(half, 0.15 * size)

    def test_memory_accounting_and_reset(self):
        sk = WavingSketch(buckets=10, cells=2, key_bytes=13)
        assert sk.memory_bytes() == 10 * (4 + 2 * 18)
        sk.update(1, 5)
        sk.reset()
        assert sk.flow_table() == {}


class TestHashPipe:
    def test_validation(self):
        with pytest.raises(ValueError):
            HashPipe(0)
        with pytest.raises(ValueError):
            HashPipe(2, 0)
        with pytest.raises(ValueError):
            HashPipe.from_memory(8)

    def test_single_flow_exact(self):
        hp = HashPipe(stages=3, slots=64, seed=1)
        for _ in range(50):
            hp.update(9, 2)
        assert hp.query(9) == 100.0

    def test_stage1_always_inserts(self):
        hp = HashPipe(stages=2, slots=1, seed=1)
        hp.update(1, 10)
        hp.update(2, 1)  # evicts key 1 from stage 1 despite being smaller
        assert hp._keys[0][0] == 2

    def test_larger_carried_item_swaps_downstream(self):
        hp = HashPipe(stages=2, slots=1, seed=1)
        hp.update(1, 10)  # stage 1
        hp.update(2, 1)  # 1 carried to stage 2 (empty) -> placed
        hp.update(3, 1)  # 2 carried; 2's count=1 vs resident 1's 10 -> drop
        assert hp.query(1) == 10.0
        assert hp.dropped >= 1

    def test_weight_conservation_with_drops(self, tiny_trace):
        hp = HashPipe(stages=3, slots=32, seed=2)
        hp.process(iter(tiny_trace))
        stored = sum(sum(row) for row in hp._counts)
        assert stored + hp.dropped == tiny_trace.total_size

    def test_heavy_flows_found(self, small_trace):
        hp = HashPipe.from_memory(64 * 1024, seed=3)
        hp.process(iter(small_trace))
        table = hp.flow_table()
        top = sorted(
            small_trace.full_counts().items(), key=lambda kv: -kv[1]
        )[:10]
        hits = sum(1 for key, _ in top if key in table)
        assert hits >= 9

    def test_never_overestimates(self, tiny_trace):
        # HashPipe only drops weight, so estimates are one-sided low.
        hp = HashPipe(stages=3, slots=64, seed=4)
        hp.process(iter(tiny_trace))
        truth = tiny_trace.full_counts()
        for key, est in hp.flow_table().items():
            assert est <= truth[key]

    def test_reset(self, tiny_trace):
        hp = HashPipe(stages=2, slots=32, seed=1)
        hp.process(iter(tiny_trace))
        hp.reset()
        assert hp.flow_table() == {}
        assert hp.dropped == 0
