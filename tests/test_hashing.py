"""Unit tests for the hashing substrate (BobHash and HashFamily)."""

import numpy as np
import pytest

from repro.hashing.bobhash import bobhash32
from repro.hashing.family import HashFamily, mix64, mix64_array


class TestBobHash:
    def test_deterministic(self):
        assert bobhash32(b"hello", 1) == bobhash32(b"hello", 1)

    def test_seed_sensitivity(self):
        assert bobhash32(b"hello", 1) != bobhash32(b"hello", 2)

    def test_data_sensitivity(self):
        assert bobhash32(b"hello", 1) != bobhash32(b"hellp", 1)

    def test_32bit_range(self):
        for data in (b"", b"a", b"x" * 11, b"y" * 12, b"z" * 25):
            h = bobhash32(data, 7)
            assert 0 <= h < 1 << 32

    def test_empty_input_ok(self):
        assert isinstance(bobhash32(b"", 0), int)

    @pytest.mark.parametrize("length", range(0, 26))
    def test_all_tail_lengths(self, length):
        # Exercise every branch of the 12-byte tail switch.
        data = bytes(range(length))
        assert 0 <= bobhash32(data, 3) < 1 << 32

    def test_length_extension_differs(self):
        # Trailing zero byte must change the hash (length folded in).
        assert bobhash32(b"abc", 0) != bobhash32(b"abc\x00", 0)

    def test_uniformity_rough(self):
        # Bucket 20k hashes into 16 bins; expect no bin off by >25%.
        bins = [0] * 16
        for i in range(20_000):
            bins[bobhash32(i.to_bytes(4, "big"), 12345) % 16] += 1
        expected = 20_000 / 16
        assert all(0.75 * expected < b < 1.25 * expected for b in bins)


class TestMix64:
    def test_deterministic_and_64bit(self):
        assert mix64(12345) == mix64(12345)
        assert 0 <= mix64(2**63) < 2**64

    def test_bijective_on_sample(self):
        outs = {mix64(i) for i in range(10_000)}
        assert len(outs) == 10_000

    def test_vectorised_matches_scalar(self):
        values = np.arange(1000, dtype=np.uint64)
        vec = mix64_array(values)
        for i in (0, 1, 17, 999):
            assert int(vec[i]) == mix64(i)


class TestHashFamily:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            HashFamily(0)
        with pytest.raises(ValueError):
            HashFamily(2, backend="sha")
        fam = HashFamily(2)
        with pytest.raises(IndexError):
            fam.index_fn(2, 10)
        with pytest.raises(ValueError):
            fam.index_fn(0, 0)

    @pytest.mark.parametrize("backend", ["mix64", "bob"])
    def test_in_range_and_deterministic(self, backend):
        fam = HashFamily(3, master_seed=42, backend=backend)
        fns = fam.index_fns(97)
        key = (0xDEAD << 72) | 0xBEEF
        for fn in fns:
            v = fn(key)
            assert 0 <= v < 97
            assert fn(key) == v

    def test_functions_are_independent(self):
        fam = HashFamily(2, master_seed=1)
        f0, f1 = fam.index_fns(1024)
        same = sum(1 for k in range(2000) if f0(k) == f1(k))
        # ~2000/1024 ~= 2 expected collisions; allow slack.
        assert same < 20

    def test_master_seed_changes_family(self):
        a = HashFamily(1, master_seed=1).index_fn(0, 1 << 20)
        b = HashFamily(1, master_seed=2).index_fn(0, 1 << 20)
        assert sum(1 for k in range(500) if a(k) == b(k)) < 5

    def test_high_bits_matter_mix64(self):
        # Two 104-bit keys differing only above bit 64 must not collide
        # systematically (regression: SrcIP lives in the high bits).
        fam = HashFamily(1, master_seed=3)
        fn = fam.index_fn(0, 1 << 16)
        collisions = sum(
            1 for i in range(1000) if fn(i << 72) == fn((i + 1000) << 72)
        )
        assert collisions < 5

    def test_mix64_uniformity(self):
        fn = HashFamily(1, master_seed=9).index_fn(0, 10)
        bins = [0] * 10
        for k in range(20_000):
            bins[fn(k)] += 1
        assert all(1700 < b < 2300 for b in bins)

    def test_vectorised_index_matches_scalar(self):
        fam = HashFamily(2, master_seed=5)
        keys = np.arange(500, dtype=np.uint64)
        vec = fam.index_array(1, keys, 777)
        fn = fam.index_fn(1, 777)
        for i in (0, 3, 499):
            assert int(vec[i]) == fn(i)

    def test_vectorised_requires_mix64(self):
        fam = HashFamily(1, backend="bob")
        with pytest.raises(NotImplementedError):
            fam.index_array(0, np.zeros(1, dtype=np.uint64), 10)
