"""Unit tests for Unbiased SpaceSaving."""

import pytest

from repro.core.uss import AUX_MEMORY_FACTOR, UnbiasedSpaceSaving


class TestConstruction:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            UnbiasedSpaceSaving(0)
        with pytest.raises(ValueError):
            UnbiasedSpaceSaving(4, engine="gpu")
        with pytest.raises(ValueError):
            UnbiasedSpaceSaving.from_memory(8)

    def test_from_memory_charges_aux_overhead(self):
        uss = UnbiasedSpaceSaving.from_memory(17 * 4 * 100)
        assert uss.capacity == 100
        assert uss.memory_bytes() == 17 * 4 * 100


class TestSemantics:
    @pytest.mark.parametrize("engine", ["fast", "naive"])
    def test_tracked_flow_increments(self, engine):
        uss = UnbiasedSpaceSaving(4, seed=1, engine=engine)
        uss.update(1, 5)
        uss.update(1, 3)
        assert uss.query(1) == 8.0

    @pytest.mark.parametrize("engine", ["fast", "naive"])
    def test_below_capacity_all_tracked_exactly(self, engine):
        uss = UnbiasedSpaceSaving(10, seed=1, engine=engine)
        for key in range(10):
            uss.update(key, key + 1)
        for key in range(10):
            assert uss.query(key) == key + 1

    @pytest.mark.parametrize("engine", ["fast", "naive"])
    def test_capacity_never_exceeded(self, engine, tiny_trace):
        uss = UnbiasedSpaceSaving(16, seed=1, engine=engine)
        uss.process(iter(tiny_trace))
        assert len(uss.flow_table()) <= 16

    @pytest.mark.parametrize("engine", ["fast", "naive"])
    def test_total_count_conservation(self, engine, tiny_trace):
        # Every update adds w to exactly one counter (SpaceSaving's
        # defining invariant, inherited by USS).
        uss = UnbiasedSpaceSaving(32, seed=2, engine=engine)
        uss.process(iter(tiny_trace))
        assert sum(uss._counts.values()) == tiny_trace.total_size

    def test_fast_and_naive_equivalent_behaviour(self, tiny_trace):
        # The engines share semantics up to min tie-breaking: both
        # conserve total weight and keep the same heavy flows.
        fast = UnbiasedSpaceSaving(64, seed=3, engine="fast")
        naive = UnbiasedSpaceSaving(64, seed=3, engine="naive")
        fast.process(iter(tiny_trace))
        naive.process(iter(tiny_trace))
        assert sum(fast._counts.values()) == sum(naive._counts.values())
        top_true = sorted(
            tiny_trace.full_counts().items(), key=lambda kv: -kv[1]
        )[:5]
        for key, _ in top_true:
            assert key in fast._counts
            assert key in naive._counts

    def test_heap_compaction_bounds_heap(self):
        uss = UnbiasedSpaceSaving(8, seed=1, engine="fast")
        for i in range(10_000):
            uss.update(i % 4, 1)
        assert len(uss._heap) <= 8 * uss.capacity + 1

    def test_query_unknown_flow(self):
        uss = UnbiasedSpaceSaving(4, seed=1)
        assert uss.query(12345) == 0.0

    def test_reset(self, tiny_trace):
        uss = UnbiasedSpaceSaving(16, seed=1)
        uss.process(iter(tiny_trace))
        uss.reset()
        assert uss.flow_table() == {}
        uss.update(1, 1)
        assert uss.query(1) == 1.0

    def test_update_cost_naive_scales_with_capacity(self):
        small = UnbiasedSpaceSaving(10, engine="naive").update_cost()
        big = UnbiasedSpaceSaving(10_000, engine="naive").update_cost()
        assert big.reads > small.reads
        assert big.reads == 10_000

    def test_update_cost_fast_is_logarithmic(self):
        cost = UnbiasedSpaceSaving(10_000, engine="fast").update_cost()
        assert cost.reads < 30


class TestHeavyHitterBehaviour:
    def test_heavy_flows_survive_eviction_pressure(self, small_trace):
        uss = UnbiasedSpaceSaving(512, seed=4)
        uss.process(iter(small_trace))
        truth = small_trace.full_counts()
        top = sorted(truth.items(), key=lambda kv: -kv[1])[:10]
        table = uss.flow_table()
        hits = sum(1 for key, _ in top if key in table)
        assert hits >= 9
