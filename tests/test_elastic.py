"""Unit tests for the Elastic sketch."""

import pytest

from repro.sketches.elastic import ElasticSketch


class TestElastic:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ElasticSketch(0, 10)
        with pytest.raises(ValueError):
            ElasticSketch(10, 0)
        with pytest.raises(ValueError):
            ElasticSketch(10, 10, lambda_=0)
        with pytest.raises(ValueError):
            ElasticSketch.from_memory(64 * 1024, heavy_fraction=1.5)

    def test_single_flow_exact_in_heavy_part(self):
        sk = ElasticSketch(64, 512, seed=1)
        for _ in range(10):
            sk.update(5, 2)
        assert sk.query(5) == 20.0

    def test_incumbent_resists_small_challengers(self):
        sk = ElasticSketch(1, 64, seed=1)
        sk.update(1, 100)  # incumbent with heavy vote+
        sk.update(2, 1)  # challenger: vote- = 1 < 8 * 100
        assert sk.query(1) == 100.0
        # challenger went to the light part
        assert sk.query(2) >= 1.0

    def test_ostracism_eviction(self):
        sk = ElasticSketch(1, 1024, seed=1)
        sk.update(1, 1)  # vote+ = 1
        sk.update(2, 8)  # vote- = 8 >= 8 * 1 -> evict key 1
        table = sk.flow_table()
        assert 2 in table
        assert 1 not in table
        # evicted incumbent's count lives on in the light part
        assert sk.query(1) >= 1.0

    def test_evicted_flow_flag_combines_light(self):
        sk = ElasticSketch(1, 1024, seed=1)
        sk.update(1, 1)
        sk.update(2, 4)  # to light (4 < 8)
        sk.update(2, 4)  # vote- reaches 8 -> eviction, flag set
        # key 2's estimate includes its light-part history
        assert sk.query(2) >= 8.0

    def test_light_counters_saturate_at_255(self):
        sk = ElasticSketch(1, 8, seed=1)
        sk.update(1, 1000)  # occupies heavy
        for _ in range(10):
            sk.update(2, 100)  # all vote- (< 8*1000), goes to light
        assert sk.query(2) <= 255.0

    def test_from_memory_budget(self):
        sk = ElasticSketch.from_memory(64 * 1024, seed=1)
        assert sk.memory_bytes() <= 66 * 1024

    def test_heavy_flows_tracked(self, small_trace):
        sk = ElasticSketch.from_memory(64 * 1024, seed=2)
        sk.process(iter(small_trace))
        table = sk.flow_table()
        top = sorted(
            small_trace.full_counts().items(), key=lambda kv: -kv[1]
        )[:10]
        hits = sum(1 for key, _ in top if key in table)
        assert hits >= 9

    def test_reset(self, tiny_trace):
        sk = ElasticSketch(64, 512, seed=1)
        sk.process(iter(tiny_trace))
        sk.reset()
        assert sk.flow_table() == {}
