"""Tests for the LPM trie substrate and the trigger engine."""

import pytest

from repro.core.query import FlowTable
from repro.flowkeys.key import FIVE_TUPLE
from repro.flowkeys.trie import PrefixTrie, classify_traffic
from repro.tasks.triggers import (
    Alarm,
    Trigger,
    TriggerEngine,
    TriggerKind,
)


class TestPrefixTrie:
    def test_validation(self):
        with pytest.raises(ValueError):
            PrefixTrie(0)
        trie = PrefixTrie(8)
        with pytest.raises(ValueError):
            trie.insert(0, 9, "x")
        with pytest.raises(ValueError):
            trie.insert(1 << 5, 4, "x")
        with pytest.raises(ValueError):
            trie.longest_match(256)

    def test_insert_and_exact(self):
        trie = PrefixTrie(8)
        trie.insert(0b1010, 4, "A")
        assert trie.exact(0b1010, 4) == "A"
        assert trie.exact(0b1010, 5) is None
        assert len(trie) == 1

    def test_overwrite_keeps_size(self):
        trie = PrefixTrie(8)
        trie.insert(0b1, 1, "A")
        trie.insert(0b1, 1, "B")
        assert len(trie) == 1
        assert trie.exact(0b1, 1) == "B"

    def test_longest_match_prefers_deeper(self):
        trie = PrefixTrie(8)
        trie.insert(0b1, 1, "half")
        trie.insert(0b1010, 4, "nibble")
        # 0b10101111 matches both; LPM picks the /4.
        assert trie.longest_match(0b10101111) == (0b1010, 4, "nibble")
        # 0b11000000 only matches the /1.
        assert trie.longest_match(0b11000000) == (0b1, 1, "half")

    def test_no_match_returns_none(self):
        trie = PrefixTrie(8)
        trie.insert(0b1, 1, "x")
        assert trie.longest_match(0b01111111) is None

    def test_default_route(self):
        trie = PrefixTrie(8)
        trie.insert(0, 0, "default")
        assert trie.longest_match(0xFF) == (0, 0, "default")

    def test_remove(self):
        trie = PrefixTrie(8)
        trie.insert(0b10, 2, "x")
        assert trie.remove(0b10, 2) is True
        assert trie.remove(0b10, 2) is False
        assert trie.longest_match(0b10000000) is None

    def test_items_enumerates_rules(self):
        trie = PrefixTrie(8)
        trie.insert(0b1, 1, "a")
        trie.insert(0b00, 2, "b")
        rules = {(v, l): p for v, l, p in trie.items()}
        assert rules == {(0b1, 1): "a", (0b00, 2): "b"}

    def test_classify_traffic(self):
        trie = PrefixTrie(8)
        trie.insert(0b1, 1, "upper")
        trie.insert(0b1010, 4, "special")
        counts = {0b10101111: 10.0, 0b11000000: 5.0, 0b00000001: 3.0}
        per_rule = classify_traffic(trie, counts)
        assert per_rule[(0b1010, 4)] == 10.0
        assert per_rule[(0b1, 1)] == 5.0
        assert per_rule[(0, -1)] == 3.0  # unmatched


def _key(src, dst=1, sport=1, dport=1, proto=6):
    return FIVE_TUPLE.pack(src, dst, sport, dport, proto)


class TestTriggerEngine:
    def _table(self, sizes):
        return FlowTable(sizes, FIVE_TUPLE)

    def test_validation(self):
        src = FIVE_TUPLE.partial("SrcIP")
        with pytest.raises(ValueError):
            Trigger("t", src, TriggerKind.SIZE_ABOVE, 0)
        t = Trigger("t", src, TriggerKind.SIZE_ABOVE, 1)
        with pytest.raises(ValueError):
            TriggerEngine([t, t])
        engine = TriggerEngine([t])
        with pytest.raises(ValueError):
            engine.install(t)

    def test_size_above_fires(self):
        src = FIVE_TUPLE.partial("SrcIP")
        engine = TriggerEngine(
            [Trigger("big-src", src, TriggerKind.SIZE_ABOVE, 100)]
        )
        alarms = engine.evaluate(
            self._table({_key(0xA): 150.0, _key(0xB): 50.0})
        )
        assert [a.flow for a in alarms] == [0xA]
        assert alarms[0].trigger == "big-src"
        assert alarms[0].window == 0

    def test_change_above_uses_previous_window(self):
        src = FIVE_TUPLE.partial("SrcIP")
        engine = TriggerEngine(
            [Trigger("surge", src, TriggerKind.CHANGE_ABOVE, 80)]
        )
        first = engine.evaluate(self._table({_key(0xA): 100.0}))
        # window 0: change vs empty previous = 100 >= 80 -> fires
        assert len(first) == 1
        second = engine.evaluate(self._table({_key(0xA): 150.0}))
        # delta 50 < 80 -> silent
        assert second == []
        third = engine.evaluate(self._table({_key(0xA): 10.0}))
        assert len(third) == 1
        assert third[0].value == pytest.approx(-140.0)

    def test_size_below_fires_only_for_previously_seen(self):
        src = FIVE_TUPLE.partial("SrcIP")
        engine = TriggerEngine(
            [Trigger("vanish", src, TriggerKind.SIZE_BELOW, 20)]
        )
        assert engine.evaluate(self._table({_key(0xA): 100.0})) == []
        alarms = engine.evaluate(self._table({}))
        assert [a.flow for a in alarms] == [0xA]

    def test_multiple_triggers_different_keys(self):
        src = FIVE_TUPLE.partial("SrcIP")
        dst = FIVE_TUPLE.partial("DstIP")
        engine = TriggerEngine(
            [
                Trigger("src", src, TriggerKind.SIZE_ABOVE, 100),
                Trigger("dst", dst, TriggerKind.SIZE_ABOVE, 100),
            ]
        )
        table = self._table(
            {_key(0xA, dst=0xD): 80.0, _key(0xB, dst=0xD): 70.0}
        )
        alarms = engine.evaluate(table)
        # No single source exceeds 100; the shared destination does.
        assert [a.trigger for a in alarms] == ["dst"]
        assert alarms[0].flow == 0xD

    def test_remove(self):
        src = FIVE_TUPLE.partial("SrcIP")
        engine = TriggerEngine(
            [Trigger("t", src, TriggerKind.SIZE_ABOVE, 1)]
        )
        assert engine.remove("t") is True
        assert engine.remove("t") is False
        assert engine.evaluate(self._table({_key(1): 10.0})) == []

    def test_end_to_end_with_windowed_sketch(self):
        from repro.core.cocosketch import BasicCocoSketch
        from repro.extensions.windowed import WindowedMeasurement
        from repro.traffic.synthetic import heavy_change_windows

        wa, wb = heavy_change_windows(
            num_packets=20_000, num_flows=3_000, change_fraction=0.02, seed=40
        )
        wm = WindowedMeasurement(
            lambda: BasicCocoSketch.from_memory(96 * 1024, seed=8),
            FIVE_TUPLE,
        )
        engine = TriggerEngine(
            [
                Trigger(
                    "hc",
                    FIVE_TUPLE.identity_partial(),
                    TriggerKind.CHANGE_ABOVE,
                    3e-3 * wa.total_size,
                )
            ]
        )
        for key, size in wa:
            wm.update(key, size)
        engine.evaluate(wm.rotate())
        for key, size in wb:
            wm.update(key, size)
        alarms = engine.evaluate(wm.rotate())
        assert len(alarms) >= 5  # the injected heavy changes fire
