"""Tests for distribution-level statistics (entropy, FSD)."""

import math

import pytest

from repro.core.cocosketch import BasicCocoSketch
from repro.core.query import FlowTable
from repro.flowkeys.key import FIVE_TUPLE
from repro.tasks.distribution import (
    empirical_entropy,
    entropy_from_table,
    entropy_report,
    flow_size_histogram,
    top_k_share,
    wmrd,
)
from repro.traffic.synthetic import uniform_workload, zipf_trace


class TestEmpiricalEntropy:
    def test_uniform_distribution_max_entropy(self):
        counts = {i: 1.0 for i in range(16)}
        assert empirical_entropy(counts) == pytest.approx(4.0)

    def test_single_flow_zero_entropy(self):
        assert empirical_entropy({1: 100.0}) == 0.0

    def test_empty_zero(self):
        assert empirical_entropy({}) == 0.0

    def test_skewed_less_than_uniform(self):
        skewed = {1: 100.0, 2: 1.0, 3: 1.0, 4: 1.0}
        uniform = {i: 25.75 for i in range(4)}
        assert empirical_entropy(skewed) < empirical_entropy(uniform)


class TestEntropyFromTable:
    def test_exact_table_matches(self):
        counts = {1: 50.0, 2: 30.0, 3: 20.0}
        assert entropy_from_table(counts, 100.0) == pytest.approx(
            empirical_entropy(counts)
        )

    def test_residual_spreading_increases_entropy(self):
        table = {1: 50.0}
        without = entropy_from_table(table, 100.0, residual_flows=0)
        with_res = entropy_from_table(table, 100.0, residual_flows=50)
        assert with_res > without

    def test_validation(self):
        with pytest.raises(ValueError):
            entropy_from_table({}, 0.0)

    def test_sketch_entropy_close_on_zipf(self):
        trace = zipf_trace(30_000, 3_000, alpha=1.1, seed=24)
        sketch = BasicCocoSketch.from_memory(96 * 1024, seed=5)
        sketch.process(iter(trace))
        table = FlowTable.from_sketch(sketch, FIVE_TUPLE)
        estimated, true, error = entropy_report(
            table.sizes, trace.full_counts()
        )
        assert error < 0.1

    def test_partial_key_entropy(self):
        # Entropy on SrcIP from the same sketch (late-bound key).
        trace = zipf_trace(30_000, 3_000, alpha=1.1, seed=25)
        sketch = BasicCocoSketch.from_memory(96 * 1024, seed=6)
        sketch.process(iter(trace))
        table = FlowTable.from_sketch(sketch, FIVE_TUPLE)
        src = FIVE_TUPLE.partial("SrcIP")
        estimated, true, error = entropy_report(
            table.aggregate(src).sizes, trace.ground_truth(src)
        )
        assert error < 0.1


class TestFlowSizeDistribution:
    def test_log_buckets(self):
        counts = {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0, 5: 9.0}
        hist = flow_size_histogram(counts)
        assert hist == {0: 1, 1: 2, 2: 1, 3: 1}

    def test_linear_buckets(self):
        counts = {1: 2.0, 2: 2.0, 3: 5.0}
        assert flow_size_histogram(counts, log_scale=False) == {2: 2, 5: 1}

    def test_wmrd_zero_for_identical(self):
        hist = {0: 5, 1: 3}
        assert wmrd(hist, hist) == 0.0

    def test_wmrd_two_for_disjoint(self):
        assert wmrd({0: 5}, {1: 5}) == 2.0

    def test_sketch_fsd_close_on_zipf(self):
        trace = zipf_trace(30_000, 2_000, alpha=1.1, seed=26)
        sketch = BasicCocoSketch.from_memory(128 * 1024, seed=7)
        sketch.process(iter(trace))
        est_hist = flow_size_histogram(sketch.flow_table())
        true_hist = flow_size_histogram(
            {k: float(v) for k, v in trace.full_counts().items()}
        )
        assert wmrd(est_hist, true_hist) < 0.3


class TestTopKShare:
    def test_zipf_head_dominates(self):
        trace = zipf_trace(20_000, 2_000, alpha=1.3, seed=27)
        counts = {k: float(v) for k, v in trace.full_counts().items()}
        assert top_k_share(counts, 10) > top_k_share(counts, 1) > 0.05

    def test_uniform_head_small(self):
        trace = uniform_workload(20_000, 2_000, seed=27)
        counts = {k: float(v) for k, v in trace.full_counts().items()}
        assert top_k_share(counts, 10) < 0.05

    def test_edge_cases(self):
        assert top_k_share({}, 5) == 0.0
        assert top_k_share({1: 10.0}, 0) == 0.0
        with pytest.raises(ValueError):
            top_k_share({1: 1.0}, -1)
