"""Tests for IPv6 keys: wide-key hashing, sketching, partial queries."""

import pytest

from repro.core.cocosketch import BasicCocoSketch
from repro.core.query import FlowTable
from repro.flowkeys.fields import format_ipv6, parse_ipv6
from repro.flowkeys.key import IPV6_FIVE_TUPLE
from repro.hashing.family import HashFamily
from repro.traffic.trace import Trace


class TestIpv6Text:
    def test_roundtrip_full_form(self):
        value = parse_ipv6("2001:db8:0:0:0:0:0:1")
        assert format_ipv6(value) == "2001:db8:0:0:0:0:0:1"

    def test_compressed_forms(self):
        assert parse_ipv6("::1") == 1
        assert parse_ipv6("2001:db8::1") == parse_ipv6(
            "2001:db8:0:0:0:0:0:1"
        )
        assert parse_ipv6("fe80::") == 0xFE80 << 112

    def test_rejections(self):
        for bad in ("1::2::3", "1:2:3", "2001:db8::1:2:3:4:5:6:7", "zzzz::"):
            with pytest.raises(ValueError):
                parse_ipv6(bad)
        with pytest.raises(ValueError):
            format_ipv6(1 << 128)


class TestWideKeyHashing:
    def test_bits_above_128_affect_hash(self):
        # Regression: IPv6 5-tuple keys are 296 bits; all of SrcIPv6
        # (bits 168..296) must influence the bucket.
        fn = HashFamily(1, master_seed=4).index_fn(0, 1 << 16)
        collisions = sum(
            1
            for i in range(2_000)
            if fn(i << 168) == fn((i + 5_000) << 168)
        )
        assert collisions < 5

    def test_hash_unchanged_for_narrow_keys(self):
        # The wide-key fold must not change 104-bit key hashing (the
        # benchmarks' recorded series depend on it).
        fn = HashFamily(1, master_seed=42).index_fn(0, 12043)
        assert fn(123456789) == fn(123456789)
        assert 0 <= fn((1 << 104) - 1) < 12043


class TestIpv6Sketching:
    def _key(self, src_low, dst_low=1):
        return IPV6_FIVE_TUPLE.pack(
            (0x20010DB8 << 96) | src_low,
            (0x20010DB8 << 96) | dst_low,
            443,
            51515,
            6,
        )

    def test_pack_unpack(self):
        key = self._key(7)
        values = IPV6_FIVE_TUPLE.unpack(key)
        assert values[0] == (0x20010DB8 << 96) | 7
        assert values[4] == 6

    def test_sketch_over_ipv6_keys(self):
        sketch = BasicCocoSketch(
            d=2, l=256, seed=1, key_bytes=IPV6_FIVE_TUPLE.width_bytes
        )
        for i in range(50):
            for _ in range(i + 1):
                sketch.update(self._key(i), 1)
        heavy = self._key(49)
        assert sketch.query(heavy) == pytest.approx(50, rel=0.2)

    def test_partial_key_aggregation_on_prefix(self):
        keys = [self._key(i, dst_low=i % 4) for i in range(40)]
        trace = Trace(IPV6_FIVE_TUPLE, keys)
        prefix = IPV6_FIVE_TUPLE.partial(("SrcIPv6", 32))
        truth = trace.ground_truth(prefix)
        # Every synthetic address shares the 2001:db8::/32 prefix.
        assert truth == {0x20010DB8: 40}

    def test_flowtable_roundtrip(self):
        sketch = BasicCocoSketch(
            d=2, l=128, seed=2, key_bytes=IPV6_FIVE_TUPLE.width_bytes
        )
        for i in range(30):
            sketch.update(self._key(i), 2)
        table = FlowTable.from_sketch(sketch, IPV6_FIVE_TUPLE)
        dst = IPV6_FIVE_TUPLE.partial("DstIPv6")
        assert table.aggregate(dst).total == 60
