"""Tests for the results-report generator."""

import json

import pytest

from repro.reporting import (
    check_paper_references,
    load_results,
    main,
    render_report,
    render_table,
)


@pytest.fixture()
def results_dir(tmp_path):
    (tmp_path / "table2.json").write_text(
        json.dumps(
            {
                "title": "Table 2 demo",
                "headers": ["resource", "CM paper", "CM model"],
                "rows": [
                    ["Hash Distribution Unit", 0.2083, 0.2083],
                    ["SRAM", 0.0427, 0.0427],
                ],
                "extra": {"bottleneck": "Hash Distribution Unit"},
            }
        )
    )
    (tmp_path / "fig99.json").write_text(
        json.dumps(
            {
                "title": "Imaginary figure",
                "headers": ["algo", "f1"],
                "rows": [["Ours", 0.95]],
            }
        )
    )
    return tmp_path


class TestReporting:
    def test_load_results(self, results_dir):
        results = load_results(results_dir)
        assert set(results) == {"table2", "fig99"}

    def test_render_table_markdown(self, results_dir):
        payload = load_results(results_dir)["fig99"]
        block = render_table(payload)
        assert block[0].startswith("### Imaginary")
        assert "| Ours | 0.95 |" in block

    def test_extra_rendered(self, results_dir):
        payload = load_results(results_dir)["table2"]
        block = "\n".join(render_table(payload))
        assert "bottleneck: Hash Distribution Unit" in block

    def test_reference_check_matches(self, results_dir):
        payload = load_results(results_dir)["table2"]
        notes = check_paper_references("table2", payload)
        assert any("matches paper" in note for note in notes)
        assert not any("DIFFERS" in note for note in notes)

    def test_reference_check_flags_divergence(self, results_dir):
        payload = load_results(results_dir)["table2"]
        payload["rows"][0][2] = 0.5  # corrupt the measured value
        notes = check_paper_references("table2", payload)
        assert any("DIFFERS" in note for note in notes)

    def test_full_report(self, results_dir):
        report = render_report(results_dir)
        assert "2 experiments found" in report
        assert "Table 2 demo" in report

    def test_main_on_real_results(self, capsys):
        # The repository's own results directory renders cleanly.
        assert main(["results"]) == 0
        out = capsys.readouterr().out
        assert "experiments found" in out

    def test_main_missing_dir(self, capsys):
        assert main(["/nonexistent-results"]) == 1
