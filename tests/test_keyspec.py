"""Unit tests for FullKeySpec / PartialKeySpec (Definition 1 semantics)."""

import pytest

from repro.flowkeys.fields import DST_IP, SRC_IP, SRC_PORT, Field
from repro.flowkeys.key import (
    FIVE_TUPLE,
    FullKeySpec,
    PartialKeySpec,
    group_table,
    paper_partial_keys,
    prefix_hierarchy,
    two_dim_hierarchy,
)


class TestFullKeySpec:
    def test_five_tuple_width(self):
        assert FIVE_TUPLE.width == 104
        assert FIVE_TUPLE.width_bytes == 13

    def test_pack_unpack_roundtrip(self):
        values = (0xC0A80101, 0x0A000001, 443, 51515, 6)
        key = FIVE_TUPLE.pack(*values)
        assert FIVE_TUPLE.unpack(key) == values

    def test_pack_orders_msb_first(self):
        spec = FullKeySpec((Field("a", 8), Field("b", 8)))
        assert spec.pack(0x12, 0x34) == 0x1234

    def test_pack_wrong_arity(self):
        with pytest.raises(ValueError):
            FIVE_TUPLE.pack(1, 2, 3)

    def test_pack_checks_field_ranges(self):
        with pytest.raises(ValueError):
            FIVE_TUPLE.pack(1 << 32, 0, 0, 0, 0)

    def test_unpack_rejects_wide_keys(self):
        with pytest.raises(ValueError):
            FIVE_TUPLE.unpack(1 << 104)

    def test_shift_of(self):
        assert FIVE_TUPLE.shift_of("Proto") == 0
        assert FIVE_TUPLE.shift_of("DstPort") == 8
        assert FIVE_TUPLE.shift_of("SrcIP") == 72

    def test_field_lookup(self):
        assert FIVE_TUPLE.field("DstIP") == DST_IP
        with pytest.raises(KeyError):
            FIVE_TUPLE.field("nope")

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError):
            FullKeySpec((SRC_IP, Field("SrcIP", 16)))

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            FullKeySpec(())

    def test_to_bytes_is_big_endian(self):
        spec = FullKeySpec((Field("a", 16),))
        assert spec.to_bytes(0x0102) == b"\x01\x02"


class TestPartialKeySpec:
    def test_field_subset_mapping(self):
        key = FIVE_TUPLE.pack(0xC0A80101, 0x0A000001, 443, 51515, 6)
        pk = FIVE_TUPLE.partial("SrcIP", "DstIP")
        assert pk.map(key) == (0xC0A80101 << 32) | 0x0A000001

    def test_prefix_mapping(self):
        key = FIVE_TUPLE.pack(0xC0A80101, 0, 0, 0, 0)
        pk = FIVE_TUPLE.partial(("SrcIP", 24))
        assert pk.map(key) == 0xC0A801

    def test_mapper_matches_map(self, six_keys):
        key = FIVE_TUPLE.pack(0xDEADBEEF, 0x0A0B0C0D, 80, 1234, 17)
        for pk in six_keys + [FIVE_TUPLE.partial(("SrcIP", 13), ("DstPort", 5))]:
            assert pk.mapper()(key) == pk.map(key)

    def test_identity_partial_is_full(self):
        pk = FIVE_TUPLE.identity_partial()
        assert pk.is_full()
        key = FIVE_TUPLE.pack(1, 2, 3, 4, 5)
        assert pk.map(key) == key

    def test_non_full_is_not_full(self):
        assert not FIVE_TUPLE.partial("SrcIP").is_full()

    def test_width_sums_prefixes(self):
        pk = FIVE_TUPLE.partial(("SrcIP", 24), ("DstIP", 8))
        assert pk.width == 32

    def test_name_label(self):
        assert FIVE_TUPLE.partial(("SrcIP", 24)).name == "SrcIP/24"
        assert FIVE_TUPLE.partial("SrcIP", "DstIP").name == "SrcIP/32+DstIP/32"

    def test_unpack_splits_parts(self):
        pk = FIVE_TUPLE.partial(("SrcIP", 8), ("DstIP", 8))
        assert pk.unpack(pk.map(FIVE_TUPLE.pack(0xC0000000, 0x0A000000, 0, 0, 0))) == (
            0xC0,
            0x0A,
        )

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            PartialKeySpec(FIVE_TUPLE, (("SrcIP", 32), ("SrcIP", 24)))

    def test_out_of_order_rejected(self):
        with pytest.raises(ValueError):
            PartialKeySpec(FIVE_TUPLE, (("DstIP", 32), ("SrcIP", 32)))

    def test_excess_prefix_rejected(self):
        with pytest.raises(ValueError):
            FIVE_TUPLE.partial(("SrcPort", 17))

    def test_specs_hashable(self):
        assert FIVE_TUPLE.partial("SrcIP") == FIVE_TUPLE.partial(("SrcIP", 32))
        assert len({FIVE_TUPLE.partial("SrcIP"), FIVE_TUPLE.partial("SrcIP")}) == 1


class TestPaperKeySets:
    def test_paper_partial_keys_order_and_count(self):
        keys = paper_partial_keys(6)
        assert [k.name for k in keys] == [
            "SrcIP/32+DstIP/32+SrcPort/16+DstPort/16+Proto/8",
            "SrcIP/32+DstIP/32",
            "SrcIP/32+SrcPort/16",
            "DstIP/32+DstPort/16",
            "SrcIP/32",
            "DstIP/32",
        ]
        assert len(paper_partial_keys(3)) == 3

    def test_paper_partial_keys_bounds(self):
        with pytest.raises(ValueError):
            paper_partial_keys(0)
        with pytest.raises(ValueError):
            paper_partial_keys(7)

    def test_prefix_hierarchy_32_levels(self):
        levels = prefix_hierarchy(FIVE_TUPLE, "SrcIP")
        assert len(levels) == 32
        assert levels[0].name == "SrcIP/32"
        assert levels[-1].name == "SrcIP/1"

    def test_prefix_hierarchy_granularity(self):
        levels = prefix_hierarchy(FIVE_TUPLE, "SrcIP", granularity=8)
        assert [l.name for l in levels] == [
            "SrcIP/32",
            "SrcIP/24",
            "SrcIP/16",
            "SrcIP/8",
        ]

    def test_prefix_hierarchy_rejects_nondivisor(self):
        with pytest.raises(ValueError):
            prefix_hierarchy(FIVE_TUPLE, "SrcIP", granularity=5)

    def test_two_dim_hierarchy_grid_size(self):
        # 8-bit granularity: (4+1)x(4+1)-1 = 24 keys.
        grid = two_dim_hierarchy(FIVE_TUPLE, "SrcIP", "DstIP", granularity=8)
        assert len(grid) == 24

    def test_two_dim_bit_granularity_paper_count(self):
        grid = two_dim_hierarchy(FIVE_TUPLE, "SrcIP", "DstIP", granularity=1)
        assert len(grid) == 33 * 33 - 1  # 1088 non-trivial keys


class TestGroupTable:
    def test_definition1_sum_preservation(self):
        pk = FIVE_TUPLE.partial(("SrcIP", 24))
        sizes = {
            FIVE_TUPLE.pack(0xC0A80101, 1, 1, 1, 6): 10,
            FIVE_TUPLE.pack(0xC0A80102, 2, 2, 2, 6): 5,
            FIVE_TUPLE.pack(0x0A000001, 3, 3, 3, 6): 7,
        }
        grouped = group_table(pk, sizes)
        assert grouped[0xC0A801] == 15
        assert grouped[0x0A0000] == 7
        assert sum(grouped.values()) == sum(sizes.values())
