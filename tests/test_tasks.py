"""Unit/integration tests for the measurement-task harnesses."""

import pytest

from repro.core.cocosketch import BasicCocoSketch
from repro.flowkeys.key import FIVE_TUPLE, paper_partial_keys, prefix_hierarchy
from repro.sketches.countmin import CountMinHeap
from repro.sketches.rhhh import RandomizedHHH
from repro.tasks import (
    FullKeyEstimator,
    HierarchyEstimator,
    PerKeyEstimator,
    heavy_change_task,
    heavy_hitter_task,
    hhh_task,
)
from repro.tasks.heavy_hitter import average_report
from repro.tasks.hhh import discounted_hhh
from repro.traffic.synthetic import heavy_change_windows


def _coco_estimator(mem=96 * 1024, seed=1):
    return FullKeyEstimator(
        BasicCocoSketch.from_memory(mem, d=2, seed=seed), FIVE_TUPLE
    )


class TestHeavyHitterTask:
    def test_reports_every_key(self, small_trace, six_keys):
        reports = heavy_hitter_task(_coco_estimator(), small_trace, six_keys)
        assert set(reports) == {pk.name for pk in six_keys}

    def test_cocosketch_scores_high(self, small_trace, six_keys):
        reports = heavy_hitter_task(_coco_estimator(), small_trace, six_keys)
        avg = average_report(reports)
        assert avg.f1 > 0.9
        assert avg.are < 0.2

    def test_validation(self, small_trace):
        with pytest.raises(ValueError):
            heavy_hitter_task(_coco_estimator(), small_trace, [])
        with pytest.raises(ValueError):
            heavy_hitter_task(
                _coco_estimator(), small_trace, paper_partial_keys(1), 2.0
            )

    def test_process_false_reuses_state(self, small_trace, six_keys):
        est = _coco_estimator()
        est.process(iter(small_trace))
        a = heavy_hitter_task(est, small_trace, six_keys, process=False)
        b = heavy_hitter_task(est, small_trace, six_keys, process=False)
        assert a == b

    def test_perkey_estimator_runs(self, small_trace):
        keys = paper_partial_keys(2)
        est = PerKeyEstimator.build(
            keys, lambda m, s: CountMinHeap.from_memory(m, seed=s), 128 * 1024
        )
        reports = heavy_hitter_task(est, small_trace, keys)
        assert all(0 <= r.f1 <= 1 for r in reports.values())


class TestHeavyChangeTask:
    def test_detects_injected_changes(self):
        a, b = heavy_change_windows(
            num_packets=40_000, num_flows=4_000, change_fraction=0.02, seed=8
        )
        keys = paper_partial_keys(2)
        reports = heavy_change_task(
            lambda: _coco_estimator(mem=96 * 1024, seed=3),
            a,
            b,
            keys,
            threshold_fraction=2e-3,
        )
        avg = average_report(reports)
        assert avg.f1 > 0.8

    def test_fresh_estimator_per_window(self):
        calls = []

        def factory():
            calls.append(1)
            return _coco_estimator()

        a, b = heavy_change_windows(num_packets=2_000, num_flows=300, seed=8)
        heavy_change_task(factory, a, b, paper_partial_keys(1), 0.01)
        assert len(calls) == 2

    def test_threshold_validation(self):
        a, b = heavy_change_windows(num_packets=1_000, num_flows=200, seed=8)
        with pytest.raises(ValueError):
            heavy_change_task(
                _coco_estimator, a, b, paper_partial_keys(1), 0.0
            )


class TestHHHTask:
    def test_cocosketch_hhh_1d(self, small_trace):
        hierarchy = prefix_hierarchy(FIVE_TUPLE, "SrcIP", granularity=4)
        report = hhh_task(
            _coco_estimator(mem=128 * 1024),
            small_trace,
            hierarchy,
            threshold_fraction=5e-3,
        )
        assert report.f1 > 0.9

    def test_rhhh_estimator_compatible(self, small_trace):
        hierarchy = prefix_hierarchy(FIVE_TUPLE, "SrcIP", granularity=8)
        est = HierarchyEstimator(RandomizedHHH(hierarchy, 128 * 1024, seed=1))
        report = hhh_task(
            est, small_trace, hierarchy, threshold_fraction=5e-3
        )
        assert 0 <= report.f1 <= 1

    def test_validation(self, small_trace):
        with pytest.raises(ValueError):
            hhh_task(_coco_estimator(), small_trace, [])

    def test_discounted_hhh_subtracts_descendants(self):
        # Two-level toy hierarchy over an 8-bit field: /8 then /4.
        from repro.flowkeys.fields import Field
        from repro.flowkeys.key import FullKeySpec

        spec = FullKeySpec((Field("x", 8),))
        hier = [spec.partial(("x", 8)), spec.partial(("x", 4))]
        tables = {
            0: {0x10: 100.0, 0x11: 5.0},
            1: {0x1: 105.0},  # parent of both
        }
        hhh = discounted_hhh(tables, hier, threshold=50)
        # level-0 0x10 is an HHH; parent 0x1's residual is 5 < 50.
        assert (0, 0x10) in hhh
        assert (1, 0x1) not in hhh

    def test_discounted_hhh_parent_survives_on_residual(self):
        from repro.flowkeys.fields import Field
        from repro.flowkeys.key import FullKeySpec

        spec = FullKeySpec((Field("x", 8),))
        hier = [spec.partial(("x", 8)), spec.partial(("x", 4))]
        tables = {
            0: {0x10: 100.0},
            1: {0x1: 180.0},  # residual 80 >= 50
        }
        hhh = discounted_hhh(tables, hier, threshold=50)
        assert (0, 0x10) in hhh
        assert (1, 0x1) in hhh
