"""Tests for the sharded multi-worker pipeline (engine.sharded + parallel).

Three layers of guarantees:

* partitioning properties (flow purity, order preservation, determinism),
* ``shards=1`` bit-identity with the unsharded engines, and
* the statistical gate — a 4-worker run's per-flow estimates are
  unbiased and its partial-key error profile matches the single-sketch
  reference within the harness margins (:mod:`tests.stat_harness`).
"""

import numpy as np
import pytest

from repro.core.serialize import dump_sketch, load_sketch
from repro.engine import get_engine
from repro.engine.sharded import (
    PARTITION_STRATEGIES,
    ShardedSketch,
    SketchSpec,
    partition_columns,
    shard_assignments,
)
from repro.flowkeys.key import FIVE_TUPLE
from repro.parallel import run_sharded, worker_seed
from repro.tasks.harness import FullKeyEstimator
from repro.traffic.synthetic import zipf_trace
from tests.stat_harness import (
    assert_error_profile,
    assert_unbiased,
    trial_estimates,
)


def _columns(trace):
    return next(trace.batches(len(trace)))


def _total_mass(sketch) -> float:
    vals = sketch._vals
    if hasattr(vals, "sum"):
        return float(vals.sum())
    return float(sum(sum(row) for row in vals))


class TestPartitioning:
    def test_assignments_in_range_and_deterministic(self, tiny_trace):
        hi, lo, _ = _columns(tiny_trace)
        a1 = shard_assignments(hi, lo, 4, "hash", seed=7)
        a2 = shard_assignments(hi, lo, 4, "hash", seed=7)
        assert a1.min() >= 0 and a1.max() < 4
        assert np.array_equal(a1, a2)

    def test_seed_changes_hash_partition(self, tiny_trace):
        hi, lo, _ = _columns(tiny_trace)
        a1 = shard_assignments(hi, lo, 4, "hash", seed=7)
        a2 = shard_assignments(hi, lo, 4, "hash", seed=8)
        assert not np.array_equal(a1, a2)

    def test_hash_partition_is_flow_pure(self, tiny_trace):
        hi, lo, _ = _columns(tiny_trace)
        assign = shard_assignments(hi, lo, 4, "hash", seed=3)
        shard_of = {}
        for h, l_, a in zip(hi.tolist(), lo.tolist(), assign.tolist()):
            assert shard_of.setdefault((h, l_), a) == a

    def test_round_robin_deals_in_order(self, tiny_trace):
        hi, lo, _ = _columns(tiny_trace)
        assign = shard_assignments(hi, lo, 3, "round-robin")
        expected = np.arange(len(lo), dtype=np.int64) % 3
        assert np.array_equal(assign, expected)

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_partition_conserves_packets_and_mass(self, tiny_trace, strategy):
        hi, lo, sizes = _columns(tiny_trace)
        parts = partition_columns(hi, lo, sizes, 4, strategy, seed=1)
        assert len(parts) == 4
        assert sum(len(s) for _, _, s in parts) == len(sizes)
        assert sum(int(s.sum()) for _, _, s in parts) == int(sizes.sum())

    def test_partition_preserves_arrival_order(self, tiny_trace):
        hi, lo, sizes = _columns(tiny_trace)
        order = np.arange(len(sizes), dtype=np.int64)
        assign = shard_assignments(hi, lo, 4, "hash", seed=1)
        for shard in range(4):
            within = order[assign == shard]
            assert np.array_equal(within, np.sort(within))

    def test_single_shard_takes_everything(self, tiny_trace):
        hi, lo, sizes = _columns(tiny_trace)
        (only,) = partition_columns(hi, lo, sizes, 1, "hash", seed=1)
        assert np.array_equal(only[0], hi)
        assert np.array_equal(only[1], lo)
        assert np.array_equal(only[2], sizes)

    def test_validation(self, tiny_trace):
        hi, lo, _ = _columns(tiny_trace)
        with pytest.raises(ValueError):
            shard_assignments(hi, lo, 0)
        with pytest.raises(ValueError):
            shard_assignments(hi, lo, 2, strategy="modulo")
        with pytest.raises(ValueError):
            ShardedSketch(SketchSpec(), 0)
        with pytest.raises(ValueError):
            ShardedSketch(SketchSpec(), 2, strategy="modulo")

    def test_worker_seeds_decorrelated_but_reproducible(self):
        seeds = [worker_seed(5, shard) for shard in range(8)]
        assert len(set(seeds)) == 8
        assert seeds == [worker_seed(5, shard) for shard in range(8)]


class TestShardsOneBitIdentity:
    """shards=1 replays the unsharded execution exactly (satellite 2)."""

    @pytest.mark.parametrize("engine", ["scalar", "numpy"])
    def test_state_bit_identical(self, tiny_trace, engine):
        spec = SketchSpec(engine=engine, variant="basic", d=2, l=128, seed=11)
        plain = spec.build()
        plain.process(tiny_trace)
        sharded = ShardedSketch(spec, 1, processes=False)
        sharded.process(tiny_trace)
        assert dump_sketch(sharded.merged) == dump_sketch(plain)

    @pytest.mark.parametrize("engine", ["scalar", "numpy"])
    def test_estimator_tables_identical(self, tiny_trace, engine):
        def build():
            return get_engine(engine).cocosketch(d=2, l=128, seed=11)

        ref = FullKeyEstimator(build(), FIVE_TUPLE)
        ref.process(tiny_trace)
        est = FullKeyEstimator(
            build(), FIVE_TUPLE, shards=1, shard_processes=False
        )
        est.process(tiny_trace)
        for partial in (FIVE_TUPLE.partial("SrcIP"), FIVE_TUPLE.partial("DstIP")):
            assert est.table(partial) == ref.table(partial)

    @pytest.mark.parametrize("engine", ["scalar", "numpy"])
    def test_hardware_variant_bit_identical(self, tiny_trace, engine):
        spec = SketchSpec(engine=engine, variant="hardware", d=2, l=128, seed=4)
        plain = spec.build()
        plain.process(tiny_trace)
        sharded = ShardedSketch(spec, 1, processes=False)
        sharded.process(tiny_trace)
        assert dump_sketch(sharded.merged) == dump_sketch(plain)


class TestShardedPipeline:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_mass_conserved(self, tiny_trace, strategy):
        spec = SketchSpec(engine="numpy", d=2, l=256, seed=2)
        sketch = ShardedSketch(spec, 4, strategy=strategy, processes=False)
        sketch.process(tiny_trace)
        assert _total_mass(sketch.merged) == tiny_trace.total_size

    def test_pool_matches_serial_bit_for_bit(self, tiny_trace):
        spec = SketchSpec(engine="scalar", d=2, l=128, seed=6)
        serial = ShardedSketch(spec, 2, processes=False)
        serial.process(tiny_trace)
        pooled = ShardedSketch(spec, 2, processes=2)
        pooled.process(tiny_trace)
        assert dump_sketch(pooled.merged) == dump_sketch(serial.merged)

    def test_repeated_process_accumulates(self, tiny_trace):
        spec = SketchSpec(engine="numpy", d=2, l=256, seed=2)
        sketch = ShardedSketch(spec, 2, processes=False)
        sketch.process(tiny_trace)
        sketch.process(tiny_trace)
        assert _total_mass(sketch.merged) == 2 * tiny_trace.total_size

    def test_reset_restores_fresh_pipeline(self, tiny_trace):
        spec = SketchSpec(engine="numpy", d=2, l=256, seed=2)
        sketch = ShardedSketch(spec, 2, processes=False)
        sketch.process(tiny_trace)
        first = dump_sketch(sketch.merged)
        sketch.reset()
        assert sketch.merged is None
        assert sketch.flow_table() == {}
        assert sketch.query(123) == 0.0
        sketch.process(tiny_trace)
        assert dump_sketch(sketch.merged) == first

    def test_update_paths_refused(self):
        sketch = ShardedSketch(SketchSpec(), 2, processes=False)
        with pytest.raises(NotImplementedError):
            sketch.update(1, 1)
        with pytest.raises(NotImplementedError):
            sketch.update_batch(([1], [2]), [1])

    def test_memory_accounts_all_workers(self):
        spec = SketchSpec(d=2, l=128)
        assert (
            ShardedSketch(spec, 4).memory_bytes()
            == 4 * spec.build().memory_bytes()
        )

    def test_run_sharded_reports_in_shard_order(self, tiny_trace):
        spec = SketchSpec(engine="scalar", d=2, l=128, seed=6)
        hi, lo, sizes = _columns(tiny_trace)
        parts = partition_columns(hi, lo, sizes, 3, "hash", spec.seed)
        blobs, reports, wall, metrics_blobs = run_sharded(
            spec, parts, processes=False
        )
        assert [r.shard for r in reports] == [0, 1, 2]
        assert sum(r.packets for r in reports) == len(sizes)
        assert wall >= 0.0
        assert metrics_blobs == [None, None, None]
        assert all(
            load_sketch(blob).flow_table() is not None for blob in blobs
        )

    def test_estimator_shards_mode_rejects_double_sharding(self):
        sharded = ShardedSketch(SketchSpec(), 2)
        with pytest.raises(ValueError):
            FullKeyEstimator(sharded, FIVE_TUPLE, shards=2)

    def test_spec_from_deserialized_sketch_fails_loudly(self):
        sketch = load_sketch(dump_sketch(SketchSpec(d=1, l=8).build()))
        with pytest.raises(ValueError):
            SketchSpec.from_sketch(sketch)


class TestShardedStatistics:
    """The statistical gate: sharded estimates behave like Theorem 1 says."""

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_four_worker_estimates_unbiased_per_flow(
        self, tiny_trace, strategy
    ):
        key = max(tiny_trace.full_counts(), key=tiny_trace.full_counts().get)
        truth = tiny_trace.full_counts()[key]

        def estimate(seed: int) -> float:
            spec = SketchSpec(engine="scalar", d=2, l=128, seed=seed)
            sketch = ShardedSketch(
                spec, 4, strategy=strategy, processes=False
            )
            sketch.process(tiny_trace)
            return sketch.query(key)

        samples = trial_estimates(estimate, trials=30, base_seed=60)
        assert_unbiased(
            samples, truth, label=f"4-shard {strategy} heavy-flow estimate"
        )

    def test_sharded_error_profile_matches_single_sketch(self, small_trace):
        """4-worker partial-key ARE within harness margin of one sketch.

        The Theorem 1 fold is unbiased but adds variance (a collided
        bucket's whole mass goes to one surviving key), so at a
        light-load operating point the sharded ARE sits a small constant
        above the single-sketch ARE.  The harness's 2-point absolute
        floor budgets exactly that fold cost; a biased or broken merge
        lands far outside it (an overloaded sketch shows +12 points).
        """
        partial = FIVE_TUPLE.partial("SrcIP")
        truth = small_trace.ground_truth(partial)
        threshold = 2e-3 * small_trace.total_size
        heavy = {k: v for k, v in truth.items() if v >= threshold}
        assert heavy

        def are_of(table) -> float:
            return sum(
                abs(table.get(k, 0.0) - v) / v for k, v in heavy.items()
            ) / len(heavy)

        def run_pair(seed: int):
            def build():
                return get_engine("numpy").cocosketch(d=2, l=16384, seed=seed)

            single = FullKeyEstimator(build(), FIVE_TUPLE)
            single.process(small_trace)
            sharded = FullKeyEstimator(
                build(), FIVE_TUPLE, shards=4, shard_processes=False
            )
            sharded.process(small_trace)
            return are_of(sharded.table(partial)), are_of(single.table(partial))

        pairs = [run_pair(1000 + i) for i in range(8)]
        assert_error_profile(
            [c for c, _ in pairs],
            [r for _, r in pairs],
            abs_floor=0.02,
            label="4-shard SrcIP ARE",
        )


class TestShardedThroughputReporting:
    def test_reports_cover_all_workers(self, tiny_trace):
        spec = SketchSpec(engine="numpy", d=2, l=256, seed=5)
        sketch = ShardedSketch(spec, 4, processes=False)
        sketch.process(tiny_trace)
        result = sketch.throughput()
        assert result.shards == 4
        assert result.packets == len(tiny_trace)
        assert result.aggregate_pps > 0
        assert len(result.worker_pps) == 4
        assert result.capacity_pps == pytest.approx(sum(result.worker_pps))
        assert result.capacity_pps >= max(result.worker_pps)
        assert result.load_imbalance >= 1.0
        assert "4 worker(s)" in result.summary()

    def test_cli_estimator_path_reports(self, tiny_trace):
        est = FullKeyEstimator(
            get_engine("numpy").cocosketch(d=2, l=256, seed=5),
            FIVE_TUPLE,
            shards=2,
            shard_processes=False,
        )
        est.process(tiny_trace)
        assert est.sketch.throughput().shards == 2
