"""Unit tests for the §5 / Appendix A closed forms."""

import math

import pytest

from repro.analysis.bounds import (
    error_bound_probability,
    memory_factor_vs_optimal_d,
    optimal_d,
    optimal_replacement_probability,
    per_array_variance,
    recall_lower_bound,
    theorem3_array_length,
    variance_increment,
)


class TestTheorem1And2:
    def test_replacement_probability(self):
        assert optimal_replacement_probability(4, 12) == pytest.approx(0.25)
        assert optimal_replacement_probability(1, 0) == 1.0

    def test_probability_in_unit_interval(self):
        for w, f in [(1, 100), (50, 50), (1000, 1)]:
            assert 0 < optimal_replacement_probability(w, f) <= 1

    def test_variance_increment_matching_key_is_zero(self):
        assert variance_increment(5, 100, same_key=True) == 0.0

    def test_variance_increment_formula(self):
        assert variance_increment(5, 100, same_key=False) == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_replacement_probability(0, 1)
        with pytest.raises(ValueError):
            optimal_replacement_probability(1, -1)
        with pytest.raises(ValueError):
            variance_increment(0, 1, False)


class TestLemma5AndTheorem3:
    def test_per_array_variance(self):
        assert per_array_variance(10, 990, 100) == 99.0
        with pytest.raises(ValueError):
            per_array_variance(1, 1, 0)

    def test_array_length_sizing(self):
        assert theorem3_array_length(0.1) == 300
        assert theorem3_array_length(1.0) == 3

    def test_bound_decreases_with_d(self):
        probs = [error_bound_probability(0.1, 300, d) for d in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_bound_decreases_with_l(self):
        assert error_bound_probability(0.1, 600, 2) < error_bound_probability(
            0.1, 300, 2
        )

    def test_bound_trivial_when_arrays_too_small(self):
        assert error_bound_probability(0.1, 10, 3) == 1.0


class TestTheorem4:
    def test_recall_bound_monotone_in_flow_size(self):
        bounds = [
            recall_lower_bound(f, 10_000, 1000, 2) for f in (1, 10, 100, 1000)
        ]
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_recall_bound_monotone_in_d(self):
        bounds = [recall_lower_bound(10, 10_000, 1000, d) for d in (1, 2, 4)]
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_paper_example_99_percent(self):
        # §5.3: f/f_bar = 1/99, d = 2, l = 900 -> >= 99% recall.
        bound = recall_lower_bound(1, 99, 900, 2)
        assert bound >= 0.99

    def test_degenerate_cases(self):
        assert recall_lower_bound(5, 0, 100, 2) == 1.0
        with pytest.raises(ValueError):
            recall_lower_bound(0, 1, 100, 2)


class TestMemoryTradeoff:
    def test_optimal_d_is_log(self):
        assert optimal_d(0.01) == round(math.log(100))
        assert optimal_d(0.5) >= 1

    def test_paper_example_d2_delta001(self):
        # §3.2: d = 2, delta = 0.01 needs only ~1.6x more buckets.
        factor = memory_factor_vs_optimal_d(2, 0.01)
        assert factor == pytest.approx(1.6, abs=0.2)

    def test_optimal_d_minimises_factor(self):
        delta = 0.01
        best = optimal_d(delta)
        factor_best = memory_factor_vs_optimal_d(best, delta)
        for d in (1, 2, 3, 8, 16):
            assert memory_factor_vs_optimal_d(d, delta) >= factor_best - 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_d(0)
        with pytest.raises(ValueError):
            memory_factor_vs_optimal_d(0, 0.1)
        with pytest.raises(ValueError):
            memory_factor_vs_optimal_d(2, 1.5)
