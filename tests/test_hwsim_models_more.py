"""Additional coverage for the hardware-model dataclasses."""

import pytest

from repro.hwsim.fpga import FpgaDevice, FpgaModel, FpgaResources
from repro.hwsim.rmt import RmtChip, RmtUsage, sketch_rmt_usage


class TestRmtUsageAlgebra:
    def test_add_sums_resources_and_maxes_stages(self):
        a = RmtUsage(1, 2, 3, 4, 5, stages=3)
        b = RmtUsage(10, 20, 30, 40, 50, stages=6)
        total = a + b
        assert total.hash_units == 11
        assert total.sram_blocks == 55
        assert total.stages == 6

    def test_scaled_multiplies_resources_not_stages(self):
        usage = RmtUsage(1, 2, 3, 4, 5, stages=4)
        tripled = usage.scaled(3)
        assert tripled.stateful_alus == 6
        assert tripled.stages == 4

    def test_fits_checks_every_resource(self):
        chip = RmtChip()
        over_stages = RmtUsage(1, 1, 1, 1, 1, stages=13)
        assert not chip.fits(over_stages)
        over_hash = RmtUsage(73, 1, 1, 1, 1, stages=1)
        assert not chip.fits(over_hash)

    def test_utilisation_keys_complete(self):
        chip = RmtChip()
        util = chip.utilisation(sketch_rmt_usage("count-min", 1024))
        assert set(util) == {
            "Hash Distribution Unit",
            "Stateful ALU",
            "Gateway",
            "Map RAM",
            "SRAM",
        }

    def test_cocosketch_usage_scales_with_d(self):
        d2 = sketch_rmt_usage("cocosketch", 100 * 1024, d=2)
        d4 = sketch_rmt_usage("cocosketch", 100 * 1024, d=4)
        assert d4.hash_units > d2.hash_units
        assert d4.stages > d2.stages

    def test_sram_scales_with_memory(self):
        small = sketch_rmt_usage("cocosketch", 64 * 1024, d=2)
        big = sketch_rmt_usage("cocosketch", 1024 * 1024, d=2)
        assert big.sram_blocks > small.sram_blocks


class TestFpgaResourceAlgebra:
    def test_scaled(self):
        res = FpgaResources(100, 200, 3)
        assert res.scaled(6) == FpgaResources(600, 1200, 18)

    def test_device_fits(self):
        device = FpgaDevice()
        assert device.fits(FpgaResources(1000, 1000, 10))
        assert not device.fits(FpgaResources(device.luts + 1, 0, 0))
        assert not device.fits(FpgaResources(0, 0, device.bram_tiles + 1))

    def test_utilisation_fractions(self):
        device = FpgaDevice()
        util = device.utilisation(
            FpgaResources(device.luts // 2, device.registers // 4, 0)
        )
        assert util["LUTs"] == pytest.approx(0.5, abs=0.01)
        assert util["Registers"] == pytest.approx(0.25, abs=0.01)

    def test_clock_validation(self):
        with pytest.raises(ValueError):
            FpgaModel().clock_mhz(0)

    def test_elastic_resources_monotone_in_memory(self):
        model = FpgaModel()
        small = model.elastic_resources(128 * 1024)
        big = model.elastic_resources(1024 * 1024)
        assert big.bram_tiles > small.bram_tiles
