"""Extension: the related-work single-key designs on the 6-key task.

Not a paper figure — an extension pitting CocoSketch against three
further single-key designs the paper cites (NitroSketch [31],
WavingSketch [38], HashPipe [59]) deployed per-key, at the Fig 8
configuration.  Expected shape: like the Fig 8 baselines, all of them
pay the per-key memory split and update fan-out; CocoSketch's one
sketch wins on F1 and ARE at 6 keys.
"""

from __future__ import annotations

import pytest

from _config import DEFAULT_MEMORY_KB, HH_THRESHOLD, make_estimator, mem_bytes

from repro.flowkeys.key import paper_partial_keys
from repro.sketches.hashpipe import HashPipe
from repro.sketches.nitrosketch import NitroSketch
from repro.sketches.wavingsketch import WavingSketch
from repro.tasks.harness import PerKeyEstimator
from repro.tasks.heavy_hitter import average_report, heavy_hitter_task

FACTORIES = {
    "NitroSketch": lambda m, s: NitroSketch.from_memory(
        m, probability=0.25, seed=s
    ),
    "WavingSketch": lambda m, s: WavingSketch.from_memory(m, seed=s),
    "HashPipe": lambda m, s: HashPipe.from_memory(m, seed=s),
}


def _run(caida):
    memory = mem_bytes(DEFAULT_MEMORY_KB)
    keys = paper_partial_keys(6)
    results = {}
    ours = make_estimator("Ours", memory, keys, seed=20)
    results["Ours"] = average_report(
        heavy_hitter_task(ours, caida, keys, HH_THRESHOLD)
    )
    for name, factory in FACTORIES.items():
        estimator = PerKeyEstimator.build(
            keys, factory, memory, seed=20, name=name
        )
        results[name] = average_report(
            heavy_hitter_task(estimator, caida, keys, HH_THRESHOLD)
        )
    return results


@pytest.mark.benchmark(group="extended")
def test_extended_baselines(benchmark, caida, record):
    results = benchmark.pedantic(_run, args=(caida,), rounds=1, iterations=1)
    record(
        "extended_baselines",
        "Extension: related-work single-key designs, 6 keys at 500 KB scale",
        ["algorithm", "recall", "precision", "f1", "are"],
        [
            [name, r.recall, r.precision, r.f1, r.are]
            for name, r in results.items()
        ],
    )
    ours = results["Ours"]
    for name in FACTORIES:
        assert ours.f1 > results[name].f1
        assert ours.are < results[name].are
