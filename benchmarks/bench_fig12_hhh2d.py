"""Figure 12: 2-d HHH (SrcIP x DstIP prefix grid) F1 / ARE vs. memory.

The paper's grid is bit-granularity (33 x 33 = 1089 keys); to keep the
pure-Python ground-truth aggregation tractable this bench uses 2-bit
granularity (17 x 17 - 1 = 288 keys), which preserves the experiment's
point — hundreds of simultaneous keys — at ~4x less compute.  Paper
shape: CocoSketch >99 % F1 at the smallest memory; R-HHH needs the
whole sweep and still lands an order of magnitude worse.
"""

from __future__ import annotations

import pytest

from _config import mem_bytes

from repro.core.cocosketch import BasicCocoSketch
from repro.flowkeys.key import FIVE_TUPLE, two_dim_hierarchy
from repro.sketches.rhhh import RandomizedHHH
from repro.tasks.harness import FullKeyEstimator, HierarchyEstimator
from repro.tasks.hhh import hhh_task

PAPER_MEMORY_MB = (5, 10, 25)
HHH_THRESHOLD = 2e-3


def _run(caida):
    grid = two_dim_hierarchy(FIVE_TUPLE, "SrcIP", "DstIP", granularity=2)
    assert len(grid) == 17 * 17 - 1
    ours, rhhh = [], []
    for paper_mb in PAPER_MEMORY_MB:
        memory = mem_bytes(paper_mb * 1024)
        est = FullKeyEstimator(
            BasicCocoSketch.from_memory(memory, d=2, seed=5), FIVE_TUPLE
        )
        ours.append(hhh_task(est, caida, grid, HHH_THRESHOLD))
        est_r = HierarchyEstimator(RandomizedHHH(grid, memory, seed=5))
        rhhh.append(hhh_task(est_r, caida, grid, HHH_THRESHOLD))
    return ours, rhhh


@pytest.mark.benchmark(group="fig12")
def test_fig12_hhh_2d(benchmark, caida, record):
    ours, rhhh = benchmark.pedantic(_run, args=(caida,), rounds=1, iterations=1)

    for metric in ("f1", "are"):
        rows = [
            ["Ours"] + [getattr(r, metric) for r in ours],
            ["RHHH"] + [getattr(r, metric) for r in rhhh],
        ]
        record(
            f"fig12_{metric}",
            f"Fig 12 2-d HHH (288-key Src x Dst grid): {metric} vs memory "
            f"(paper MB)",
            ["algorithm"] + [f"{mb}MB" for mb in PAPER_MEMORY_MB],
            rows,
        )

    assert all(r.f1 > 0.95 for r in ours)
    assert all(r.f1 < 0.9 for r in rhhh)
    # ARE: orders of magnitude apart (paper: ~4e4x).
    assert rhhh[0].are > 50 * ours[0].are
