"""Figure 13: MAWI trace — heavy-hitter and heavy-change F1 vs. #keys.

Paper shape: on the second (more skewed) trace CocoSketch keeps >90 %
F1 beyond two keys and beats every baseline.
"""

from __future__ import annotations

import pytest

from _config import (
    DEFAULT_MEMORY_KB,
    HC_ALGORITHMS,
    HH_ALGORITHMS,
    HH_THRESHOLD,
    make_estimator,
    mem_bytes,
)

from repro.flowkeys.key import paper_partial_keys
from repro.tasks.heavy_change import heavy_change_task
from repro.tasks.heavy_hitter import average_report, heavy_hitter_task

KEY_COUNTS = (1, 2, 3, 4, 5, 6)


def _run_hh(mawi):
    memory = mem_bytes(DEFAULT_MEMORY_KB)
    results = {}
    for algo in HH_ALGORITHMS:
        series = []
        for n in KEY_COUNTS:
            keys = paper_partial_keys(n)
            estimator = make_estimator(algo, memory, keys, seed=6)
            series.append(
                average_report(
                    heavy_hitter_task(estimator, mawi, keys, HH_THRESHOLD)
                ).f1
            )
        results[algo] = series
    return results


def _run_hc(mawi):
    memory = mem_bytes(DEFAULT_MEMORY_KB)
    half = len(mawi) // 2
    window_a = mawi.slice(0, half, "mawi-a")
    window_b = mawi.slice(half, len(mawi), "mawi-b")
    results = {}
    for algo in HC_ALGORITHMS:
        series = []
        for n in KEY_COUNTS:
            keys = paper_partial_keys(n)
            reports = heavy_change_task(
                lambda: make_estimator(algo, memory, keys, seed=6),
                window_a,
                window_b,
                keys,
                5e-4,
            )
            series.append(average_report(reports).f1)
        results[algo] = series
    return results


@pytest.mark.benchmark(group="fig13")
def test_fig13a_mawi_heavy_hitters(benchmark, mawi, record):
    results = benchmark.pedantic(_run_hh, args=(mawi,), rounds=1, iterations=1)
    record(
        "fig13a_f1",
        "Fig 13(a) MAWI heavy hitters: F1 vs number of keys",
        ["algorithm"] + [str(n) for n in KEY_COUNTS],
        [[algo] + series for algo, series in results.items()],
    )
    ours = results["Ours"]
    assert all(f1 > 0.85 for f1 in ours)
    for algo in HH_ALGORITHMS:
        if algo != "Ours":
            assert results[algo][-1] < ours[-1]


@pytest.mark.benchmark(group="fig13")
def test_fig13b_mawi_heavy_changes(benchmark, mawi, record):
    results = benchmark.pedantic(_run_hc, args=(mawi,), rounds=1, iterations=1)
    record(
        "fig13b_f1",
        "Fig 13(b) MAWI heavy changes: F1 vs number of keys",
        ["algorithm"] + [str(n) for n in KEY_COUNTS],
        [[algo] + series for algo, series in results.items()],
    )
    ours = results["Ours"]
    assert all(f1 > 0.8 for f1 in ours)
    for algo in HC_ALGORITHMS[1:]:
        assert results[algo][-1] < ours[-1]
