"""Figure 10: heavy-change RR / PR vs. number of partial keys.

Paper shape: CocoSketch's recall and precision stay >95 % as the key
count grows while C-Heap / CM-Heap / Elastic / UnivMon fall off.
"""

from __future__ import annotations

import pytest

from _config import DEFAULT_MEMORY_KB, HC_ALGORITHMS, make_estimator, mem_bytes

from repro.flowkeys.key import paper_partial_keys
from repro.tasks.heavy_change import heavy_change_task
from repro.tasks.heavy_hitter import average_report
from repro.traffic.synthetic import heavy_change_windows

KEY_COUNTS = (1, 2, 3, 4, 5, 6)
CHANGE_THRESHOLD = 5e-4


def _run():
    window_a, window_b = heavy_change_windows(
        num_packets=150_000, num_flows=50_000, change_fraction=0.01, seed=31
    )
    memory = mem_bytes(DEFAULT_MEMORY_KB)
    results = {}
    for algo in HC_ALGORITHMS:
        series = []
        for n in KEY_COUNTS:
            keys = paper_partial_keys(n)
            reports = heavy_change_task(
                lambda: make_estimator(algo, memory, keys, seed=3),
                window_a,
                window_b,
                keys,
                CHANGE_THRESHOLD,
            )
            series.append(average_report(reports))
        results[algo] = series
    return results


@pytest.mark.benchmark(group="fig10")
def test_fig10_heavy_changes_vs_keys(benchmark, record):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    for metric in ("recall", "precision"):
        rows = [
            [algo] + [getattr(r, metric) for r in series]
            for algo, series in results.items()
        ]
        record(
            f"fig10_{metric}",
            f"Fig 10 heavy changes: {metric} vs number of keys",
            ["algorithm"] + [str(n) for n in KEY_COUNTS],
            rows,
        )

    ours = results["Ours"]
    assert all(r.recall > 0.85 for r in ours)
    assert all(r.precision > 0.85 for r in ours)
    # At 6 keys CocoSketch has the best F1.
    for algo in HC_ALGORITHMS[1:]:
        assert ours[-1].f1 > results[algo][-1].f1
