"""Figure 9: heavy-hitter F1 / ARE vs. memory, 6 partial keys.

Paper shape: with ~300 KB (paper scale) CocoSketch's F1 exceeds 90 %
while the baselines sit well below; CocoSketch's ARE is ~10x smaller.
"""

from __future__ import annotations

import pytest

from _config import HH_ALGORITHMS, HH_THRESHOLD, make_estimator, mem_bytes

from repro.flowkeys.key import paper_partial_keys
from repro.tasks.heavy_hitter import average_report, heavy_hitter_task

PAPER_MEMORY_KB = (200, 300, 400, 500, 600)


def _run(caida):
    keys = paper_partial_keys(6)
    results = {}
    for algo in HH_ALGORITHMS:
        series = []
        for paper_kb in PAPER_MEMORY_KB:
            estimator = make_estimator(algo, mem_bytes(paper_kb), keys, seed=2)
            avg = average_report(
                heavy_hitter_task(estimator, caida, keys, HH_THRESHOLD)
            )
            series.append(avg)
        results[algo] = series
    return results


@pytest.mark.benchmark(group="fig09")
def test_fig09_heavy_hitters_vs_memory(benchmark, caida, record):
    results = benchmark.pedantic(_run, args=(caida,), rounds=1, iterations=1)

    for metric in ("f1", "are"):
        rows = [
            [algo] + [getattr(r, metric) for r in series]
            for algo, series in results.items()
        ]
        record(
            f"fig09_{metric}",
            f"Fig 9 heavy hitters: {metric} vs memory (paper KB, 6 keys)",
            ["algorithm"] + [f"{kb}KB" for kb in PAPER_MEMORY_KB],
            rows,
        )

    ours = results["Ours"]
    # F1 grows with memory and clears 90 % from the 500 KB point.
    assert all(b.f1 >= a.f1 - 0.03 for a, b in zip(ours, ours[1:]))
    assert ours[3].f1 > 0.85
    # Single-key baselines stay below CocoSketch at every point.
    for algo in ("C-Heap", "CM-Heap", "Elastic", "UnivMon"):
        for point, ours_point in zip(results[algo], ours):
            assert point.f1 < ours_point.f1 + 0.02
    # ARE advantage at the paper's 500 KB point.
    baseline_are = [results[a][3].are for a in HH_ALGORITHMS if a != "Ours"]
    assert min(baseline_are) > 2 * ours[3].are
