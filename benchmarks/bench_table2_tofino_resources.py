"""Table 2: Tofino resource breakdown of one single-key sketch.

Regenerates the paper's utilisation rows from the calibrated RMT model
and checks the two claims: the hash distribution unit is the
bottleneck, and no more than four single-key sketches fit on a chip.
"""

from __future__ import annotations

import pytest

from repro.hwsim.rmt import RmtChip, sketch_rmt_usage

PAPER_VALUES = {
    "Count-Min": {
        "Hash Distribution Unit": 0.2083,
        "Stateful ALU": 0.1667,
        "Gateway": 0.0781,
        "Map RAM": 0.0711,
        "SRAM": 0.0427,
    },
    "R-HHH": {
        "Hash Distribution Unit": 0.2222,
        "Stateful ALU": 0.1667,
        "Gateway": 0.0833,
        "Map RAM": 0.0711,
        "SRAM": 0.0427,
    },
}


def _run():
    chip = RmtChip()
    cm = sketch_rmt_usage("count-min", 500 * 1024)
    rhhh = sketch_rmt_usage("r-hhh", 500 * 1024)
    return {
        "Count-Min": chip.utilisation(cm),
        "R-HHH": chip.utilisation(rhhh),
    }, chip.max_instances(cm), chip.bottleneck(cm)


@pytest.mark.benchmark(group="table2")
def test_table2_tofino_resources(benchmark, record):
    util, max_cm, bottleneck = benchmark.pedantic(_run, rounds=1, iterations=1)

    resources = list(PAPER_VALUES["Count-Min"])
    rows = []
    for res in resources:
        rows.append(
            [
                res,
                PAPER_VALUES["Count-Min"][res],
                util["Count-Min"][res],
                PAPER_VALUES["R-HHH"][res],
                util["R-HHH"][res],
            ]
        )
    record(
        "table2",
        "Table 2 Tofino resource usage (paper vs model)",
        ["resource", "CM paper", "CM model", "RHHH paper", "RHHH model"],
        rows,
        extra={"max_count_min_instances": max_cm, "bottleneck": bottleneck},
    )

    for algo, paper in PAPER_VALUES.items():
        for res, value in paper.items():
            assert util[algo][res] == pytest.approx(value, abs=0.002), (
                algo,
                res,
            )
    assert bottleneck == "Hash Distribution Unit"
    assert max_cm == 4
