"""Shared benchmark configuration (see EXPERIMENTS.md).

Scaling rationale: the paper processes 13-27M-packet traces against
200 KB-25 MB sketches in C++/hardware.  Pure-Python packet loops cap
tractable traces at a few hundred thousand packets, so both axes are
scaled together to keep the *operating regime* — distinct flows per
bucket and buckets per true heavy hitter — in the paper's range:

* traces: 200k packets, ~30k distinct 5-tuple flows (CAIDA-like),
  ~150k packets for the heavy-change windows;
* memory axis: paper value x MEMORY_SCALE (0.4), e.g. the paper's
  500 KB default point becomes 200 KB (~12k CocoSketch buckets).

Heavy-hitter threshold stays the paper's 1e-4 of total traffic.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from repro.core.uss import UnbiasedSpaceSaving
from repro.engine import get_engine
from repro.flowkeys.key import FIVE_TUPLE, PartialKeySpec
from repro.sketches.base import Sketch
from repro.sketches.countmin import CountMinHeap
from repro.sketches.countsketch import CountSketchHeap
from repro.sketches.elastic import ElasticSketch
from repro.sketches.spacesaving import SpaceSaving
from repro.sketches.univmon import UnivMon
from repro.tasks.harness import Estimator, FullKeyEstimator, PerKeyEstimator

#: Paper memory (KB) -> benchmark memory (bytes).
MEMORY_SCALE = 0.4

#: §7.1 default: 500 KB total memory.
DEFAULT_MEMORY_KB = 500

#: §7.1 default heavy-hitter threshold (fraction of total traffic).
HH_THRESHOLD = 1e-4

CAIDA_PACKETS = 200_000
CAIDA_FLOWS = 70_000
MAWI_PACKETS = 150_000
MAWI_FLOWS = 50_000

#: Execution engine for the "Ours" update path.  Overridable via the
#: ``REPRO_ENGINE`` env var or ``pytest benchmarks/ --engine numpy``
#: (conftest rewrites these module attributes, so benches must read
#: ``_config.ENGINE`` at call time rather than from-import a copy).
ENGINE = os.environ.get("REPRO_ENGINE", "scalar")

#: Packets per ``update_batch`` call on vectorised engines; env var
#: ``REPRO_BATCH_SIZE`` or ``--batch-size``.
BATCH_SIZE = int(os.environ.get("REPRO_BATCH_SIZE", "4096"))


def mem_bytes(paper_kb: float) -> int:
    """Scale a paper memory point (KB) to benchmark bytes."""
    return int(paper_kb * MEMORY_SCALE * 1024)


def make_estimator(
    name: str,
    memory_bytes: int,
    partial_keys: list,
    seed: int = 1,
    engine: Optional[str] = None,
) -> Estimator:
    """Build one of the §7.2 competitors at a memory budget.

    ``Ours`` and ``USS`` deploy one full-key sketch and aggregate;
    every other baseline deploys one single-key sketch per partial key
    (memory split equally), exactly as §7.1 configures them.  *engine*
    picks the execution engine for ``Ours`` (default: the configured
    :data:`ENGINE`); baselines have no vectorised path and ignore it.
    """
    if name == "Ours":
        sketch = get_engine(engine or ENGINE).cocosketch_from_memory(
            memory_bytes, d=2, seed=seed
        )
        return FullKeyEstimator(sketch, FIVE_TUPLE)
    if name == "USS":
        return FullKeyEstimator(
            UnbiasedSpaceSaving.from_memory(memory_bytes, seed=seed), FIVE_TUPLE
        )
    factories: Dict[str, Callable[[int, int], Sketch]] = {
        "CM-Heap": lambda m, s: CountMinHeap.from_memory(m, seed=s),
        "C-Heap": lambda m, s: CountSketchHeap.from_memory(m, seed=s),
        "SS": lambda m, s: SpaceSaving.from_memory(m),
        "Elastic": lambda m, s: ElasticSketch.from_memory(m, seed=s),
        "UnivMon": lambda m, s: UnivMon.from_memory(
            m, levels=6, rows=3, heap_k=64, seed=s
        ),
    }
    if name not in factories:
        raise ValueError(f"unknown algorithm {name!r}")
    return PerKeyEstimator.build(
        partial_keys, factories[name], memory_bytes, seed=seed, name=name
    )


HH_ALGORITHMS = ("Ours", "SS", "USS", "C-Heap", "CM-Heap", "Elastic", "UnivMon")
HC_ALGORITHMS = ("Ours", "C-Heap", "CM-Heap", "Elastic", "UnivMon")
