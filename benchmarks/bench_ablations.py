"""Ablations for the design choices DESIGN.md §5 calls out.

* Geometry: at fixed memory, how does splitting buckets across more
  arrays (d) trade typical vs worst-case error (basic variant)?
* Median vs mean combination in the hardware-friendly query.
* Math-unit mantissa width for the P4 approximate division.
* Heavy-tail dependence: CocoSketch on a uniform (worst-case §3.2)
  workload needs more memory for the same accuracy, as predicted.
"""

from __future__ import annotations

import pytest

from _config import DEFAULT_MEMORY_KB, HH_THRESHOLD, mem_bytes

from repro.core.cocosketch import BasicCocoSketch
from repro.core.hardware import HardwareCocoSketch, P4CocoSketch
from repro.flowkeys.key import FIVE_TUPLE, paper_partial_keys
from repro.hwsim.approx_div import relative_probability_error
from repro.tasks.harness import FullKeyEstimator
from repro.tasks.heavy_hitter import average_report, heavy_hitter_task
from repro.traffic.synthetic import uniform_workload


class MeanCombineCocoSketch(HardwareCocoSketch):
    """Hardware variant with mean instead of median combination."""

    name = "CocoSketch-HW-mean"

    def query(self, key: int) -> float:
        estimates = [self.array_estimate(i, key) for i in range(self.d)]
        return sum(estimates) / len(estimates)


def _f1(sketch, trace, keys):
    est = FullKeyEstimator(sketch, FIVE_TUPLE)
    return average_report(
        heavy_hitter_task(est, trace, keys, HH_THRESHOLD)
    ).f1


@pytest.mark.benchmark(group="ablation")
def test_ablation_median_vs_mean(benchmark, caida, record):
    keys = paper_partial_keys(6)
    memory = mem_bytes(DEFAULT_MEMORY_KB)

    def run():
        results = {}
        for d in (2, 3):
            median_sk = HardwareCocoSketch.from_memory(memory, d=d, seed=14)
            mean_sk = MeanCombineCocoSketch.from_memory(memory, d=d, seed=14)
            results[f"median d={d}"] = _f1(median_sk, caida, keys)
            results[f"mean d={d}"] = _f1(mean_sk, caida, keys)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_median_vs_mean",
        "Ablation: hardware-friendly query combination (F1, 6 keys)",
        ["combiner", "f1"],
        [[k, v] for k, v in results.items()],
    )
    # Both are viable; results should be in the same accuracy regime.
    for value in results.values():
        assert value > 0.6


@pytest.mark.benchmark(group="ablation")
def test_ablation_mantissa_bits(benchmark, caida, record):
    keys = paper_partial_keys(6)
    memory = mem_bytes(DEFAULT_MEMORY_KB)
    bit_widths = (2, 3, 4, 6)

    def run():
        f1 = {}
        perr = {}
        for bits in bit_widths:
            sk = P4CocoSketch.from_memory(memory, d=2, seed=15)
            sk.mantissa_bits = bits
            f1[bits] = _f1(sk, caida, keys)
            perr[bits] = max(
                relative_probability_error(v, bits) for v in range(1, 5000)
            )
        return f1, perr

    f1, perr = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_mantissa_bits",
        "Ablation: P4 approximate-division mantissa width",
        ["bits", "f1", "worst probability error"],
        [[bits, f1[bits], perr[bits]] for bits in bit_widths],
    )
    # Probability error halves per extra mantissa bit...
    assert perr[2] > perr[3] > perr[4] > perr[6]
    # ...but even 2 mantissa bits barely dents end-to-end F1 (<5%),
    # which is why the Tofino's 4-bit unit is harmless (§6.2).
    assert f1[4] - f1[2] < 0.05
    assert abs(f1[6] - f1[4]) < 0.03


@pytest.mark.benchmark(group="ablation")
def test_ablation_uniform_workload(benchmark, record):
    keys = paper_partial_keys(4)

    def run():
        trace = uniform_workload(num_packets=120_000, num_flows=30_000, seed=16)
        results = {}
        for paper_kb in (500, 1000, 2000):
            sk = BasicCocoSketch.from_memory(mem_bytes(paper_kb), d=2, seed=16)
            est = FullKeyEstimator(sk, FIVE_TUPLE)
            results[paper_kb] = average_report(
                heavy_hitter_task(est, trace, keys, 5e-5)
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_uniform_workload",
        "Ablation: uniform (non-heavy-tailed) workload, F1 vs memory",
        ["paper KB", "f1", "recall", "precision"],
        [
            [kb, r.f1, r.recall, r.precision]
            for kb, r in results.items()
        ],
    )
    # §3.2: without a heavy tail CocoSketch needs more buckets; adding
    # memory must recover accuracy.
    f1s = [results[kb].f1 for kb in (500, 1000, 2000)]
    assert f1s[0] < f1s[-1]


@pytest.mark.benchmark(group="ablation")
def test_ablation_nitrosketch_sampling(benchmark, caida, record):
    """NitroSketch-style sampling (§8): throughput up, bounded F1 cost."""
    from repro.extensions.sampling import SampledCocoSketch
    from repro.metrics.throughput import measure_throughput

    keys = paper_partial_keys(6)
    memory = mem_bytes(DEFAULT_MEMORY_KB)
    probabilities = (1.0, 0.5, 0.25, 0.1)

    def run():
        packets = list(caida)
        f1 = {}
        mpps = {}
        for p in probabilities:
            sk = SampledCocoSketch.from_memory(memory, p, seed=17)
            f1[p] = _f1(sk, caida, keys)
            timing = SampledCocoSketch.from_memory(memory, p, seed=17)
            mpps[p] = measure_throughput(timing.update, packets[:40_000]).mpps
        return f1, mpps

    f1, mpps = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_sampling",
        "Ablation: NitroSketch-style update sampling",
        ["probability", "f1", "mpps"],
        [[p, f1[p], mpps[p]] for p in probabilities],
    )
    # Throughput rises as p falls; accuracy degrades gracefully.
    assert mpps[0.25] > 1.5 * mpps[1.0]
    assert f1[0.25] > f1[1.0] - 0.25
    assert f1[1.0] == max(f1.values())


@pytest.mark.benchmark(group="ablation")
def test_ablation_geometry_l_vs_d(benchmark, caida, record):
    """At fixed memory, how should buckets be split into arrays?

    Complements Fig 16: sweeps d with l = memory / (d * bucket) so the
    *total* bucket count is constant, isolating the choice-vs-dilution
    tradeoff stochastic variance minimisation makes.
    """
    keys = paper_partial_keys(6)
    memory = mem_bytes(DEFAULT_MEMORY_KB)
    d_values = (1, 2, 4, 8)

    def run():
        results = {}
        for d in d_values:
            sk = BasicCocoSketch.from_memory(memory, d=d, seed=18)
            results[d] = (_f1(sk, caida, keys), sk.l)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_geometry",
        "Ablation: arrays (d) vs per-array length at fixed memory",
        ["d", "l per array", "f1"],
        [[d, l, f1] for d, (f1, l) in results.items()],
    )
    # d = 2 captures nearly all of the power-of-d benefit (§3.2).
    assert results[2][0] > results[1][0] + 0.05
    assert abs(results[4][0] - results[2][0]) < 0.06
    assert abs(results[8][0] - results[4][0]) < 0.06
