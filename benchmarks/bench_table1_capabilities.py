"""Table 1: solution-space comparison, derived from the code itself.

Each cell of the paper's qualitative table is backed by a computable
predicate:

* *Fidelity* — the estimator is unbiased on partial keys (checked by
  a Monte-Carlo mean test on a mid-sized flow).
* *Resource efficiency* — per-packet update cost stays O(1)-ish in
  both the number of keys and the number of tracked flows.
* *Compatibility* — the update logic admits a unidirectional RMT
  pipeline layout (no circular dependencies).
"""

from __future__ import annotations

import pytest

from repro.analysis.empirical import (
    empirical_estimates,
    estimate_moments,
    mean_confidence_halfwidth,
)
from repro.core.cocosketch import BasicCocoSketch
from repro.core.hardware import HardwareCocoSketch
from repro.core.uss import UnbiasedSpaceSaving
from repro.flowkeys.key import paper_partial_keys
from repro.hwsim.rmt import (
    basic_cocosketch_program,
    hardware_cocosketch_program,
    PipelineProgram,
    Op,
)
from repro.sketches.countmin import CountMinHeap
from repro.sketches.multikey import MultiKeySketchBank
from repro.traffic.synthetic import zipf_trace


def _is_unbiased(factory, packets, key, size) -> bool:
    estimates = empirical_estimates(factory, packets, key, trials=40)
    mean, _ = estimate_moments(estimates)
    halfwidth = mean_confidence_halfwidth(estimates, z=4.0)
    return abs(mean - size) <= max(halfwidth, 0.05 * size)


def _run():
    trace = zipf_trace(3_000, 500, alpha=1.1, seed=13)
    packets = list(trace)
    key, size = sorted(
        trace.full_counts().items(), key=lambda kv: -kv[1]
    )[20]
    keys6 = paper_partial_keys(6)

    rows = {}

    # Sketch per key (R-HHH-style banks).
    bank1 = MultiKeySketchBank(
        keys6[:1], lambda m, s: CountMinHeap.from_memory(m, seed=s), 96 * 1024
    )
    bank6 = MultiKeySketchBank(
        keys6, lambda m, s: CountMinHeap.from_memory(m, seed=s), 96 * 1024
    )
    rows["Sketch per key"] = (
        False,  # CM is one-sided biased
        bank6.update_cost().hashes <= bank1.update_cost().hashes,  # False
        True,  # CM pipelines fine
    )

    # Full-key single-key sketch with post recovery: no guarantee on
    # partial keys (§2.3 analysis) though resource/hw-friendly.
    rows["Full-key sketch"] = (False, True, True)

    # USS: unbiased but O(n) per packet and needs a global min.
    uss_cost_small = UnbiasedSpaceSaving(100, engine="naive").update_cost()
    uss_cost_big = UnbiasedSpaceSaving(10_000, engine="naive").update_cost()
    # Global min-scan: whether any bucket is updated depends on every
    # other bucket's counter — all-to-all circular dependency.
    uss_global_min = PipelineProgram(
        [
            Op(
                f"upd{i}",
                tuple(f"b{j}" for j in range(3) if j != i),
                f"b{i}",
            )
            for i in range(3)
        ]
    )
    rows["Unbiased SpaceSaving"] = (
        _is_unbiased(
            lambda seed: UnbiasedSpaceSaving(128, seed=seed), packets, key, size
        ),
        uss_cost_big.reads <= uss_cost_small.reads,  # False: O(n)
        uss_global_min.layout(12) is not None,  # False: circular
    )

    # CocoSketch: all three.
    coco_cost_d2 = BasicCocoSketch(d=2, l=64).update_cost()
    rows["CocoSketch (ours)"] = (
        _is_unbiased(
            lambda seed: HardwareCocoSketch(d=2, l=128, seed=seed),
            packets,
            key,
            size,
        ),
        coco_cost_d2.memory_accesses <= 8,
        hardware_cocosketch_program(d=2).layout(12) is not None,
    )

    # Sanity: the *basic* variant is indeed not RMT-layoutable, which
    # is why the hardware-friendly variant exists.
    assert basic_cocosketch_program(d=2).layout(12) is None
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_capabilities(benchmark, record):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    def mark(flag):
        return "yes" if flag else "-"

    record(
        "table1",
        "Table 1 solutions vs requirements (computed from code)",
        ["solution", "fidelity", "resource", "compatibility"],
        [[name] + [mark(v) for v in row] for name, row in rows.items()],
    )

    assert rows["CocoSketch (ours)"] == (True, True, True)
    assert rows["Unbiased SpaceSaving"][0] is True
    assert rows["Unbiased SpaceSaving"][1] is False
    assert rows["Sketch per key"][1] is False
    assert rows["Full-key sketch"][0] is False
