"""Engine microbenchmark: scalar vs numpy packets/sec by batch size.

Times the full update path of both execution engines — basic and
hardware CocoSketch — on a Zipf trace, sweeping the numpy engine across
batch sizes.  This is the acceptance gauge for the batched columnar
engine: at the default 4096-packet batch the numpy basic CocoSketch
must clear 5x the scalar engine on a 500k-packet trace.

Runs two ways:

* ``pytest benchmarks/bench_engine_batch.py`` — records
  ``results/bench_engine_batch.json`` like every other bench (the
  smoke marker trims the trace for CI).
* ``python benchmarks/bench_engine_batch.py --packets 500000`` —
  standalone sweep printing the table and writing the same JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).parent))

from _config import mem_bytes  # noqa: E402

from repro.engine import get_engine  # noqa: E402
from repro.traffic.synthetic import zipf_trace  # noqa: E402

BATCH_SIZES = (256, 4096, 65536)
MEMORY_KB = 500  # paper default; scaled to 200 KB of sketch state.


def _time_engine(engine_name: str, trace, batch_size, variant: str) -> float:
    """Packets/sec of one engine's full ``process`` path over *trace*."""
    engine = get_engine(engine_name)
    if variant == "basic":
        sketch = engine.cocosketch_from_memory(mem_bytes(MEMORY_KB), d=2, seed=7)
    else:
        sketch = engine.hardware_cocosketch_from_memory(
            mem_bytes(MEMORY_KB), d=2, seed=7
        )
    # Warm the trace's column cache outside the timed region so every
    # engine/batch combination pays the same (zero) packing cost.
    if batch_size is not None:
        for _ in trace.batches(batch_size):
            break
    start = time.perf_counter()
    sketch.process(trace, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    return len(trace) / elapsed


def run_sweep(packets: int, flows: int, seed: int = 7) -> Dict:
    """Sweep both engines/variants; returns the recorded payload rows."""
    trace = zipf_trace(packets, flows, alpha=1.05, seed=seed)
    rows: List[List] = []
    speedups: Dict[str, float] = {}
    for variant in ("basic", "hardware"):
        scalar_pps = _time_engine("scalar", trace, None, variant)
        rows.append([variant, "scalar", "-", scalar_pps, 1.0])
        for bs in BATCH_SIZES:
            numpy_pps = _time_engine("numpy", trace, bs, variant)
            speedup = numpy_pps / scalar_pps
            rows.append([variant, "numpy", bs, numpy_pps, speedup])
            speedups[f"{variant}@{bs}"] = speedup
    return {
        "packets": packets,
        "flows": flows,
        "rows": rows,
        "speedups": speedups,
    }


HEADERS = ["variant", "engine", "batch", "packets_per_sec", "speedup"]


def test_engine_batch_throughput(record):
    """Pytest entry: small sweep sized for CI, same JSON artifact."""
    sweep = run_sweep(packets=120_000, flows=40_000)
    record(
        "bench_engine_batch",
        "Engine throughput: scalar vs numpy by batch size",
        HEADERS,
        sweep["rows"],
        extra={"packets": sweep["packets"], "flows": sweep["flows"]},
    )
    # The acceptance 5x is measured at 500k packets (standalone mode);
    # at CI scale assert the direction with headroom to spare.
    assert sweep["speedups"]["basic@4096"] > 3.0
    assert sweep["speedups"]["hardware@4096"] > 3.0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=500_000)
    parser.add_argument("--flows", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "results" / "bench_engine_batch.json"),
    )
    args = parser.parse_args(argv)

    sweep = run_sweep(args.packets, args.flows, seed=args.seed)
    print(f"{'variant':<10} {'engine':<8} {'batch':>7} {'pps':>12} {'speedup':>8}")
    for variant, engine, batch, pps, speedup in sweep["rows"]:
        print(f"{variant:<10} {engine:<8} {batch!s:>7} {pps:>12.0f} {speedup:>7.2f}x")

    payload = {
        "title": "Engine throughput: scalar vs numpy by batch size",
        "headers": HEADERS,
        "rows": sweep["rows"],
        "extra": {"packets": sweep["packets"], "flows": sweep["flows"]},
    }
    out = Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
