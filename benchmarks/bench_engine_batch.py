"""Engine microbenchmark: scalar vs numpy packets/sec by batch size,
plus the sharded-pipeline scaling sweep.

Times the full update path of both execution engines — basic and
hardware CocoSketch — on a Zipf trace, sweeping the numpy engine across
batch sizes.  This is the acceptance gauge for the batched columnar
engine: at the default 4096-packet batch the numpy basic CocoSketch
must clear 5x the scalar engine on a 500k-packet trace.

The shard sweep runs the same trace through the sharded multi-worker
pipeline (:mod:`repro.engine.sharded`) at 1/2/4/8 workers, recording
aggregate and wall-clock packet rates, load imbalance, and the SrcIP
heavy-hitter ARE of the merged sketch; its acceptance gate is that the
4-worker ARE stays within the statistical-harness margin of the
single-sketch reference while aggregate throughput scales above 1x.

Runs two ways:

* ``pytest benchmarks/bench_engine_batch.py`` — records
  ``results/bench_engine_batch.json`` and
  ``results/bench_shard_sweep.json`` like every other bench (the
  smoke sizes trim the traces for CI).
* ``python benchmarks/bench_engine_batch.py --packets 500000`` —
  standalone sweeps printing the tables and writing the same JSON
  (``--sweep engine|shards|all`` selects which).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from _config import mem_bytes  # noqa: E402

from repro import obs  # noqa: E402
from repro.engine import get_engine  # noqa: E402
from repro.engine.sharded import ShardedSketch, SketchSpec  # noqa: E402
from repro.flowkeys.key import FIVE_TUPLE  # noqa: E402
from repro.tasks.harness import FullKeyEstimator  # noqa: E402
from repro.traffic.synthetic import zipf_trace  # noqa: E402
from tests.stat_harness import check_error_profile  # noqa: E402

BATCH_SIZES = (256, 4096, 65536)
MEMORY_KB = 500  # paper default; scaled to 200 KB of sketch state.

SHARD_COUNTS = (1, 2, 4, 8)
#: Shard-sweep accuracy point: generous per-worker geometry so the
#: Theorem 1 fold cost (not bucket pressure) is what the gate measures.
SHARD_SWEEP_L = 65536
SHARD_HH_THRESHOLD = 1e-3


def _time_engine(engine_name: str, trace, batch_size, variant: str) -> float:
    """Packets/sec of one engine's full ``process`` path over *trace*."""
    engine = get_engine(engine_name)
    if variant == "basic":
        sketch = engine.cocosketch_from_memory(mem_bytes(MEMORY_KB), d=2, seed=7)
    else:
        sketch = engine.hardware_cocosketch_from_memory(
            mem_bytes(MEMORY_KB), d=2, seed=7
        )
    # Warm the trace's column cache outside the timed region so every
    # engine/batch combination pays the same (zero) packing cost.
    if batch_size is not None:
        for _ in trace.batches(batch_size):
            break
    start = time.perf_counter()
    sketch.process(trace, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    return len(trace) / elapsed


def run_sweep(packets: int, flows: int, seed: int = 7) -> Dict:
    """Sweep both engines/variants; returns the recorded payload rows."""
    trace = zipf_trace(packets, flows, alpha=1.05, seed=seed)
    rows: List[List] = []
    speedups: Dict[str, float] = {}
    for variant in ("basic", "hardware"):
        scalar_pps = _time_engine("scalar", trace, None, variant)
        rows.append([variant, "scalar", "-", scalar_pps, 1.0])
        for bs in BATCH_SIZES:
            numpy_pps = _time_engine("numpy", trace, bs, variant)
            speedup = numpy_pps / scalar_pps
            rows.append([variant, "numpy", bs, numpy_pps, speedup])
            speedups[f"{variant}@{bs}"] = speedup
    return {
        "packets": packets,
        "flows": flows,
        "rows": rows,
        "speedups": speedups,
    }


HEADERS = ["variant", "engine", "batch", "packets_per_sec", "speedup"]

SHARD_HEADERS = [
    "shards",
    "capacity_pps",
    "wall_pps",
    "capacity_scaling",
    "imbalance",
    "srcip_are",
]


def _sharded_are(table: Dict[int, float], truth: Dict[int, float], threshold: float) -> float:
    heavy = {k: v for k, v in truth.items() if v >= threshold}
    return sum(abs(table.get(k, 0.0) - v) / v for k, v in heavy.items()) / len(heavy)


def run_shard_sweep(
    packets: int,
    flows: int,
    seed: int = 7,
    engine: str = "scalar",
    shard_counts=SHARD_COUNTS,
    gate_trials: int = 4,
) -> Dict:
    """Throughput scaling + merged-sketch accuracy across shard counts.

    Scaling is measured on *capacity* — the sum of per-worker update
    rates, i.e. what the shard fleet sustains with one core/device per
    worker — because wall time on the simulation host is bounded by
    however many cores it happens to have.  The default engine is
    ``scalar``: the sharded pipeline exists to scale the compute-bound
    path horizontally (the numpy engine is the SIMD-style answer).

    Also runs the statistical acceptance gate: over *gate_trials*
    seeded (4-shard, single-sketch) pairs, the sharded SrcIP ARE must
    sit within the harness's two-sample margin of the reference.
    """
    trace = zipf_trace(packets, flows, alpha=1.05, seed=seed)
    partial = FIVE_TUPLE.partial("SrcIP")
    truth = trace.ground_truth(partial)
    threshold = SHARD_HH_THRESHOLD * trace.total_size

    def spec_for(run_seed: int) -> SketchSpec:
        return SketchSpec(engine=engine, d=2, l=SHARD_SWEEP_L, seed=run_seed)

    rows: List[List] = []
    base_capacity = None
    for shards in shard_counts:
        sketch = ShardedSketch(spec_for(seed), shards)
        sketch.process(trace)
        result = sketch.throughput()
        capacity = result.capacity_pps
        wall = result.packets / result.wall_elapsed_s
        if base_capacity is None:
            base_capacity = capacity
        table = FullKeyEstimator(sketch, FIVE_TUPLE).table(partial)
        rows.append(
            [
                shards,
                capacity,
                wall,
                capacity / base_capacity,
                result.load_imbalance,
                _sharded_are(table, truth, threshold),
            ]
        )

    # Accuracy gate: 4-shard ARE vs single sketch, a few seeded pairs.
    sharded_ares, single_ares = [], []
    for trial in range(gate_trials):
        run_seed = seed + 100 + trial
        single = spec_for(run_seed).build()
        single.process(trace)
        single_table = FullKeyEstimator(single, FIVE_TUPLE).table(partial)
        sharded = ShardedSketch(spec_for(run_seed), 4)
        sharded.process(trace)
        sharded_table = FullKeyEstimator(sharded, FIVE_TUPLE).table(partial)
        sharded_ares.append(_sharded_are(sharded_table, truth, threshold))
        single_ares.append(_sharded_are(single_table, truth, threshold))
    gate = check_error_profile(sharded_ares, single_ares, abs_floor=0.02)
    return {
        "packets": packets,
        "flows": flows,
        "engine": engine,
        "rows": rows,
        "are_gate": {
            "passed": gate.passed,
            "sharded_mean_are": gate.candidate_mean,
            "single_mean_are": gate.reference_mean,
            "margin": gate.margin,
            "trials": gate.trials,
            "detail": gate.describe(),
        },
    }


OBS_HEADERS = ["variant", "plain_pps", "instrumented_pps", "ratio"]

#: Overhead acceptance: metrics-enabled numpy throughput must stay
#: within 5% of the metrics-disabled run (ratio >= 0.95).
OBS_OVERHEAD_FLOOR = 0.95


def _time_obs(trace, variant: str, batch_size: int, instrumented: bool) -> float:
    """Packets/sec of the numpy engine, registry on or off."""
    engine = get_engine("numpy")
    if variant == "basic":
        sketch = engine.cocosketch_from_memory(mem_bytes(MEMORY_KB), d=2, seed=7)
    else:
        sketch = engine.hardware_cocosketch_from_memory(
            mem_bytes(MEMORY_KB), d=2, seed=7
        )
    for _ in trace.batches(batch_size):
        break
    if instrumented:
        with obs.collecting():
            start = time.perf_counter()
            sketch.process(trace, batch_size=batch_size)
            elapsed = time.perf_counter() - start
    else:
        start = time.perf_counter()
        sketch.process(trace, batch_size=batch_size)
        elapsed = time.perf_counter() - start
    return len(trace) / elapsed


def run_obs_overhead(
    packets: int, flows: int, seed: int = 7, repeats: int = 3
) -> Dict:
    """Observability overhead gate: instrumented vs plain numpy engine.

    Best-of-*repeats* packet rate for each (variant, registry on/off)
    combination, interleaved so background noise hits both sides alike.
    The gate is ``instrumented / plain >= OBS_OVERHEAD_FLOOR``.
    """
    trace = zipf_trace(packets, flows, alpha=1.05, seed=seed)
    rows: List[List] = []
    ratios: Dict[str, float] = {}
    for variant in ("basic", "hardware"):
        plain, instrumented = 0.0, 0.0
        for _ in range(repeats):
            plain = max(plain, _time_obs(trace, variant, 4096, False))
            instrumented = max(
                instrumented, _time_obs(trace, variant, 4096, True)
            )
        ratio = instrumented / plain
        rows.append([variant, plain, instrumented, ratio])
        ratios[variant] = ratio
    return {
        "packets": packets,
        "flows": flows,
        "rows": rows,
        "ratios": ratios,
        "floor": OBS_OVERHEAD_FLOOR,
    }


def test_engine_batch_throughput(record):
    """Pytest entry: small sweep sized for CI, same JSON artifact."""
    sweep = run_sweep(packets=120_000, flows=40_000)
    record(
        "bench_engine_batch",
        "Engine throughput: scalar vs numpy by batch size",
        HEADERS,
        sweep["rows"],
        extra={"packets": sweep["packets"], "flows": sweep["flows"]},
    )
    # The acceptance 5x is measured at 500k packets (standalone mode);
    # at CI scale assert the direction with headroom to spare.
    assert sweep["speedups"]["basic@4096"] > 3.0
    assert sweep["speedups"]["hardware@4096"] > 3.0


def test_obs_overhead(record):
    """Pytest entry: instrumented numpy must stay within 5% of plain."""
    sweep = run_obs_overhead(packets=150_000, flows=40_000)
    record(
        "bench_obs_overhead",
        "Observability overhead: numpy engine with metrics on vs off",
        OBS_HEADERS,
        sweep["rows"],
        extra={
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "floor": sweep["floor"],
        },
    )
    for variant, ratio in sweep["ratios"].items():
        assert ratio >= OBS_OVERHEAD_FLOOR, (
            f"{variant}: instrumented throughput is {ratio:.3f}x of "
            f"plain (floor {OBS_OVERHEAD_FLOOR})"
        )


def test_shard_sweep_scaling(record):
    """Pytest entry: CI-sized shard sweep, same JSON artifact."""
    sweep = run_shard_sweep(packets=120_000, flows=20_000, gate_trials=3)
    record(
        "bench_shard_sweep",
        "Sharded pipeline: throughput scaling and accuracy by shard count",
        SHARD_HEADERS,
        sweep["rows"],
        extra={
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "engine": sweep["engine"],
            "are_gate": sweep["are_gate"],
        },
    )
    by_shards = {row[0]: row for row in sweep["rows"]}
    # Fleet capacity must scale above 1x from 1 -> 4 workers.
    assert by_shards[4][3] > 1.0
    assert sweep["are_gate"]["passed"], sweep["are_gate"]["detail"]


def _print_shard_sweep(sweep: Dict) -> None:
    print(
        f"{'shards':>6} {'cap pps':>12} {'wall pps':>12} "
        f"{'scaling':>8} {'imbal':>6} {'ARE':>8}"
    )
    for shards, agg, wall, scaling, imbal, are in sweep["rows"]:
        print(
            f"{shards:>6} {agg:>12.0f} {wall:>12.0f} "
            f"{scaling:>7.2f}x {imbal:>5.2f}x {are:>8.4f}"
        )
    print(f"ARE gate: {sweep['are_gate']['detail']}")


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=500_000)
    parser.add_argument("--flows", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--sweep",
        choices=("engine", "shards", "obs", "all"),
        default="engine",
        help="which sweep(s) to run standalone",
    )
    parser.add_argument("--shard-flows", type=int, default=50_000)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "results" / "bench_engine_batch.json"),
    )
    parser.add_argument(
        "--shard-out",
        default=str(Path(__file__).resolve().parent.parent / "results" / "bench_shard_sweep.json"),
    )
    parser.add_argument(
        "--obs-out",
        default=str(Path(__file__).resolve().parent.parent / "results" / "bench_obs_overhead.json"),
    )
    args = parser.parse_args(argv)

    if args.sweep in ("engine", "all"):
        sweep = run_sweep(args.packets, args.flows, seed=args.seed)
        print(f"{'variant':<10} {'engine':<8} {'batch':>7} {'pps':>12} {'speedup':>8}")
        for variant, engine, batch, pps, speedup in sweep["rows"]:
            print(f"{variant:<10} {engine:<8} {batch!s:>7} {pps:>12.0f} {speedup:>7.2f}x")

        payload = {
            "title": "Engine throughput: scalar vs numpy by batch size",
            "headers": HEADERS,
            "rows": sweep["rows"],
            "extra": {"packets": sweep["packets"], "flows": sweep["flows"]},
        }
        out = Path(args.out)
        out.parent.mkdir(exist_ok=True)
        out.write_text(json.dumps(payload, indent=2))
        print(f"\nwrote {out}")

    if args.sweep in ("shards", "all"):
        sweep = run_shard_sweep(
            args.packets, args.shard_flows, seed=args.seed
        )
        _print_shard_sweep(sweep)
        payload = {
            "title": "Sharded pipeline: throughput scaling and accuracy by shard count",
            "headers": SHARD_HEADERS,
            "rows": sweep["rows"],
            "extra": {
                "packets": sweep["packets"],
                "flows": sweep["flows"],
                "engine": sweep["engine"],
                "are_gate": sweep["are_gate"],
            },
        }
        out = Path(args.shard_out)
        out.parent.mkdir(exist_ok=True)
        out.write_text(json.dumps(payload, indent=2))
        print(f"\nwrote {out}")
        if not sweep["are_gate"]["passed"]:
            print("shard-sweep ARE gate FAILED", file=sys.stderr)
            return 1

    if args.sweep in ("obs", "all"):
        sweep = run_obs_overhead(args.packets, args.flows, seed=args.seed)
        print(f"{'variant':<10} {'plain pps':>12} {'instr pps':>12} {'ratio':>7}")
        for variant, plain, instrumented, ratio in sweep["rows"]:
            print(
                f"{variant:<10} {plain:>12.0f} {instrumented:>12.0f} "
                f"{ratio:>6.3f}x"
            )
        payload = {
            "title": "Observability overhead: numpy engine with metrics on vs off",
            "headers": OBS_HEADERS,
            "rows": sweep["rows"],
            "extra": {
                "packets": sweep["packets"],
                "flows": sweep["flows"],
                "floor": sweep["floor"],
            },
        }
        out = Path(args.obs_out)
        out.parent.mkdir(exist_ok=True)
        out.write_text(json.dumps(payload, indent=2))
        print(f"\nwrote {out}")
        if any(r < OBS_OVERHEAD_FLOOR for r in sweep["ratios"].values()):
            print("obs overhead gate FAILED", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
