"""Engine microbenchmark: scalar vs numpy packets/sec by batch size,
plus the sharded-pipeline and staged-pipeline sweeps.

Times the full update path of both execution engines — basic and
hardware CocoSketch — on a Zipf trace, sweeping the numpy engine across
batch sizes.  This is the acceptance gauge for the batched columnar
engine: at the default 4096-packet batch the numpy basic CocoSketch
must clear 5x the scalar engine on a 500k-packet trace.  A large-batch
guard (``LARGE_BATCH_FLOOR``) fails the sweep if throughput at the
biggest batch drops below the mid-batch rate — the cache cliff the
staged pipeline's chunking exists to prevent.

The shard sweep runs the same trace through the sharded multi-worker
pipeline (:mod:`repro.engine.sharded`) at 1/2/4/8 workers, recording
capacity and wall-clock packet rates, the driver-efficiency ratio
between them (gated at ``DRIVER_EFFICIENCY_FLOOR`` when run at full
scale), load imbalance, and the SrcIP heavy-hitter ARE of the merged
sketch; its accuracy gate is that the 4-worker ARE stays within the
statistical-harness margin of the single-sketch reference while fleet
capacity scales above 1x.

The pipeline sweep times each stage of the staged numpy engine
(hash → replace → stats) via the ``pipeline.stage.*`` metric spans and
records the per-stage breakdown with chunk/stall counters.

The kernels sweep races the replace-stage backends
(:mod:`repro.engine.kernels`): staged-numpy vs the numba-jitted kernel
when the compiler is importable, gated on the compiled replace stage
clearing ``KERNEL_REPLACE_FLOOR`` (2x) at full standalone scale.

The adaptive sweep pits the elastic-geometry governor against the best
hand-tuned static geometry (the top row of
``results/ablation_geometry.json``) at equal memory, on an adversarial
workload that shifts mid-run from ``caida_like`` to ``mawi_like``.
The governed daemon starts at 1/8 of the budgeted width and must
grow its way to competitive accuracy: the gate requires at least one
resize and a post-shift ARE within ``ADAPTIVE_ARE_LIMIT`` (5%) of the
static reference (docs/governance.md).

Runs two ways:

* ``pytest benchmarks/bench_engine_batch.py`` — records
  ``results/bench_engine_batch.json``,
  ``results/bench_shard_sweep.json``,
  ``results/bench_pipeline_stages.json``, and
  ``results/bench_kernels.json`` like every other bench (the smoke
  sizes trim the traces for CI).
* ``python benchmarks/bench_engine_batch.py --packets 500000`` —
  standalone sweeps printing the tables and writing the same JSON
  (``--sweep engine|shards|obs|pipeline|kernels|adaptive|all`` selects
  which; every sweep writes ``results/<name>.json`` under
  ``--out-dir``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from _config import mem_bytes  # noqa: E402

from repro import obs  # noqa: E402
from repro.engine import get_engine  # noqa: E402
from repro.engine.sharded import ShardedSketch, SketchSpec  # noqa: E402
from repro.flowkeys.key import FIVE_TUPLE  # noqa: E402
from repro.tasks.harness import FullKeyEstimator  # noqa: E402
from repro.traffic.synthetic import zipf_trace  # noqa: E402
from tests.stat_harness import check_error_profile  # noqa: E402

BATCH_SIZES = (256, 4096, 65536)
MEMORY_KB = 500  # paper default; scaled to 200 KB of sketch state.

SHARD_COUNTS = (1, 2, 4, 8)
#: Shard-sweep accuracy point: generous per-worker geometry so the
#: Theorem 1 fold cost (not bucket pressure) is what the gate measures.
SHARD_SWEEP_L = 65536
SHARD_HH_THRESHOLD = 1e-3


def _time_engine(engine_name: str, trace, batch_size, variant: str) -> float:
    """Packets/sec of one engine's full ``process`` path over *trace*."""
    engine = get_engine(engine_name)
    if variant == "basic":
        sketch = engine.cocosketch_from_memory(mem_bytes(MEMORY_KB), d=2, seed=7)
    else:
        sketch = engine.hardware_cocosketch_from_memory(
            mem_bytes(MEMORY_KB), d=2, seed=7
        )
    # Warm the trace's column cache outside the timed region so every
    # engine/batch combination pays the same (zero) packing cost.
    if batch_size is not None:
        for _ in trace.batches(batch_size):
            break
    start = time.perf_counter()
    sketch.process(trace, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    return len(trace) / elapsed


#: Large-batch guard: numpy pps at the biggest batch must stay within
#: noise of the mid-batch rate.  The staged pipeline chunks every batch
#: to a cache-resident size, so the old 65536 cliff (0.69x of the 4096
#: rate) would trip this immediately; 0.95 leaves room for timer noise.
LARGE_BATCH_FLOOR = 0.95


def _cliff_guard(speedups: Dict[str, float]) -> List[str]:
    """Large-batch-vs-mid-batch violations (empty = guard passes)."""
    failures = []
    mid, large = 4096, max(BATCH_SIZES)
    for variant in ("basic", "hardware"):
        ratio = speedups[f"{variant}@{large}"] / speedups[f"{variant}@{mid}"]
        if ratio < LARGE_BATCH_FLOOR:
            failures.append(
                f"{variant}: batch-{large} throughput is {ratio:.3f}x of "
                f"batch-{mid} (floor {LARGE_BATCH_FLOOR}) — large-batch "
                "cliff is back"
            )
    return failures


def run_sweep(packets: int, flows: int, seed: int = 7) -> Dict:
    """Sweep both engines/variants; returns the recorded payload rows."""
    trace = zipf_trace(packets, flows, alpha=1.05, seed=seed)
    rows: List[List] = []
    speedups: Dict[str, float] = {}
    for variant in ("basic", "hardware"):
        scalar_pps = _time_engine("scalar", trace, None, variant)
        rows.append([variant, "scalar", "-", scalar_pps, 1.0])
        for bs in BATCH_SIZES:
            numpy_pps = _time_engine("numpy", trace, bs, variant)
            speedup = numpy_pps / scalar_pps
            rows.append([variant, "numpy", bs, numpy_pps, speedup])
            speedups[f"{variant}@{bs}"] = speedup
    return {
        "packets": packets,
        "flows": flows,
        "rows": rows,
        "speedups": speedups,
        "cliff_failures": _cliff_guard(speedups),
    }


HEADERS = ["variant", "engine", "batch", "packets_per_sec", "speedup"]

SHARD_HEADERS = [
    "shards",
    "cpu_capacity_pps",
    "wall_pps",
    "driver_efficiency",
    "capacity_scaling",
    "imbalance",
    "srcip_are",
]

#: Streaming-driver acceptance: wall pps at 2 shards must reach 75% of
#: fleet capacity (the old barrier driver sat at ~45%).  Applied by the
#: standalone sweep at full scale; the CI-sized pytest entry uses a
#: looser directional floor because worker spawn cost doesn't amortise
#: over a 120k-packet trace.
DRIVER_EFFICIENCY_FLOOR = 0.75


def _sharded_are(table: Dict[int, float], truth: Dict[int, float], threshold: float) -> float:
    heavy = {k: v for k, v in truth.items() if v >= threshold}
    return sum(abs(table.get(k, 0.0) - v) / v for k, v in heavy.items()) / len(heavy)


def run_shard_sweep(
    packets: int,
    flows: int,
    seed: int = 7,
    engine: str = "scalar",
    shard_counts=SHARD_COUNTS,
    gate_trials: int = 4,
) -> Dict:
    """Throughput scaling + merged-sketch accuracy across shard counts.

    Scaling is measured on *CPU capacity* — the sum of per-worker
    CPU-time rates, i.e. what the shard fleet sustains with one
    core/device per worker — because wall time on the simulation host
    is bounded by however many cores it happens to have (the streaming
    workers genuinely overlap, so wall-span rates just split the host
    between them).  The default engine is ``scalar``: the sharded
    pipeline exists to scale the compute-bound path horizontally (the
    numpy engine is the SIMD-style answer).

    Also runs the statistical acceptance gate: over *gate_trials*
    seeded (4-shard, single-sketch) pairs, the sharded SrcIP ARE must
    sit within the harness's two-sample margin of the reference.
    """
    trace = zipf_trace(packets, flows, alpha=1.05, seed=seed)
    partial = FIVE_TUPLE.partial("SrcIP")
    truth = trace.ground_truth(partial)
    threshold = SHARD_HH_THRESHOLD * trace.total_size

    def spec_for(run_seed: int) -> SketchSpec:
        return SketchSpec(engine=engine, d=2, l=SHARD_SWEEP_L, seed=run_seed)

    rows: List[List] = []
    base_capacity = None
    efficiency_at = {}
    for shards in shard_counts:
        sketch = ShardedSketch(spec_for(seed), shards)
        sketch.process(trace)
        result = sketch.throughput()
        cpu_capacity = result.cpu_capacity_pps
        wall = result.packets / result.wall_elapsed_s
        if base_capacity is None:
            base_capacity = cpu_capacity
        efficiency_at[shards] = result.driver_efficiency
        table = FullKeyEstimator(sketch, FIVE_TUPLE).table(partial)
        rows.append(
            [
                shards,
                cpu_capacity,
                wall,
                result.driver_efficiency,
                cpu_capacity / base_capacity,
                result.load_imbalance,
                _sharded_are(table, truth, threshold),
            ]
        )

    # Accuracy gate: 4-shard ARE vs single sketch, a few seeded pairs.
    sharded_ares, single_ares = [], []
    for trial in range(gate_trials):
        run_seed = seed + 100 + trial
        single = spec_for(run_seed).build()
        single.process(trace)
        single_table = FullKeyEstimator(single, FIVE_TUPLE).table(partial)
        sharded = ShardedSketch(spec_for(run_seed), 4)
        sharded.process(trace)
        sharded_table = FullKeyEstimator(sharded, FIVE_TUPLE).table(partial)
        sharded_ares.append(_sharded_are(sharded_table, truth, threshold))
        single_ares.append(_sharded_are(single_table, truth, threshold))
    gate = check_error_profile(sharded_ares, single_ares, abs_floor=0.02)
    return {
        "packets": packets,
        "flows": flows,
        "engine": engine,
        "rows": rows,
        "driver_efficiency": efficiency_at,
        "are_gate": {
            "passed": gate.passed,
            "sharded_mean_are": gate.candidate_mean,
            "single_mean_are": gate.reference_mean,
            "margin": gate.margin,
            "trials": gate.trials,
            "detail": gate.describe(),
        },
    }


OBS_HEADERS = ["variant", "plain_pps", "instrumented_pps", "ratio"]

#: Overhead acceptance: metrics-enabled numpy throughput must stay
#: within 5% of the metrics-disabled run (ratio >= 0.95).
OBS_OVERHEAD_FLOOR = 0.95


def _time_obs(trace, variant: str, batch_size, instrumented: bool) -> float:
    """Packets/sec of the numpy engine, registry on or off.

    ``batch_size=None`` runs the engine's default streaming path — the
    staged pipeline at its own ``pipeline_chunk`` — which is the
    configuration whose overhead the gate certifies; smaller explicit
    batches multiply the per-chunk span frequency beyond anything the
    engine would choose itself.
    """
    engine = get_engine("numpy")
    if variant == "basic":
        sketch = engine.cocosketch_from_memory(mem_bytes(MEMORY_KB), d=2, seed=7)
    else:
        sketch = engine.hardware_cocosketch_from_memory(
            mem_bytes(MEMORY_KB), d=2, seed=7
        )
    for _ in trace.batches(batch_size or sketch.pipeline_chunk):
        break
    if instrumented:
        with obs.collecting():
            start = time.perf_counter()
            sketch.process(trace, batch_size=batch_size)
            elapsed = time.perf_counter() - start
    else:
        start = time.perf_counter()
        sketch.process(trace, batch_size=batch_size)
        elapsed = time.perf_counter() - start
    return len(trace) / elapsed


def run_obs_overhead(
    packets: int, flows: int, seed: int = 7, repeats: int = 3
) -> Dict:
    """Observability overhead gate: instrumented vs plain numpy engine.

    Best-of-*repeats* packet rate for each (variant, registry on/off)
    combination, interleaved so background noise hits both sides alike.
    The gate is ``instrumented / plain >= OBS_OVERHEAD_FLOOR``.
    """
    trace = zipf_trace(packets, flows, alpha=1.05, seed=seed)
    rows: List[List] = []
    ratios: Dict[str, float] = {}
    for variant in ("basic", "hardware"):
        plain, instrumented = 0.0, 0.0
        for _ in range(repeats):
            plain = max(plain, _time_obs(trace, variant, None, False))
            instrumented = max(
                instrumented, _time_obs(trace, variant, None, True)
            )
        ratio = instrumented / plain
        rows.append([variant, plain, instrumented, ratio])
        ratios[variant] = ratio
    return {
        "packets": packets,
        "flows": flows,
        "rows": rows,
        "ratios": ratios,
        "floor": OBS_OVERHEAD_FLOOR,
    }


PIPELINE_HEADERS = [
    "variant",
    "stage",
    "chunks",
    "total_s",
    "mean_us_per_chunk",
    "share",
]


def run_pipeline_stages(packets: int, flows: int, seed: int = 7) -> Dict:
    """Per-stage timing breakdown of the staged numpy pipeline.

    Runs each numpy variant's ``process`` path under a metrics registry,
    validates the snapshot against ``repro.obs.metrics/v1``, and turns
    the ``pipeline.stage.*`` spans into rows: chunk count, total stage
    seconds, mean microseconds per chunk, and each stage's share of the
    staged time.  The ring-buffer counters (chunks fed, producer
    stalls) ride along per variant, so the artifact shows both where
    the time goes and that backpressure never engaged on a healthy run.
    """
    from repro.obs.schema import validate_snapshot

    trace = zipf_trace(packets, flows, alpha=1.05, seed=seed)
    engine = get_engine("numpy")
    rows: List[List] = []
    variants: Dict[str, Dict] = {}
    for variant, tag in (("basic", "basic"), ("hardware", "hw")):
        if variant == "basic":
            sketch = engine.cocosketch_from_memory(
                mem_bytes(MEMORY_KB), d=2, seed=seed
            )
        else:
            sketch = engine.hardware_cocosketch_from_memory(
                mem_bytes(MEMORY_KB), d=2, seed=seed
            )
        for _ in trace.batches(sketch.pipeline_chunk):
            break
        with obs.collecting() as reg:
            start = time.perf_counter()
            sketch.process(trace)
            elapsed = time.perf_counter() - start
        snap = reg.snapshot()
        validate_snapshot(snap)
        stage_spans = {
            name.split(".")[-1]: span
            for name, span in snap["spans"].items()
            if name.startswith("pipeline.stage.")
        }
        staged_total = sum(s["total_s"] for s in stage_spans.values()) or 1.0
        for stage in ("hash", "replace", "stats"):
            span = stage_spans.get(stage)
            if span is None:
                continue
            rows.append(
                [
                    variant,
                    stage,
                    span["count"],
                    span["total_s"],
                    span["total_s"] / max(span["count"], 1) * 1e6,
                    span["total_s"] / staged_total,
                ]
            )
        variants[variant] = {
            "chunks": snap["counters"].get(f"pipeline.numpy.{tag}.chunks", 0),
            "stalls": snap["counters"].get(f"pipeline.numpy.{tag}.stalls", 0),
            "pps": len(trace) / elapsed,
        }
    return {
        "packets": packets,
        "flows": flows,
        "rows": rows,
        "variants": variants,
    }


KERNEL_HEADERS = [
    "variant",
    "kernel",
    "pps",
    "replace_total_s",
    "replace_us_per_chunk",
    "replace_speedup",
    "pipeline_speedup",
]

#: Kernel acceptance (standalone at >= 500k packets, numba installed):
#: the compiled replace stage must run >= 2x the staged-numpy replace
#: stage.  The CI-sized pytest entry uses the directional floor — a
#: 120k-packet trace leaves the jitted loop little to amortise over.
KERNEL_REPLACE_FLOOR = 2.0
KERNEL_REPLACE_CI_FLOOR = 1.3


def _kernel_sketch(variant: str, backend: str, seed: int):
    """A numpy-engine sketch pinned to one kernel backend."""
    from repro.engine.base import buckets_for_memory
    from repro.engine.vectorized import (
        NumpyCocoSketch,
        NumpyHardwareCocoSketch,
    )
    from repro.sketches.base import DEFAULT_KEY_BYTES

    l = buckets_for_memory(mem_bytes(MEMORY_KB), 2, DEFAULT_KEY_BYTES)
    cls = NumpyCocoSketch if variant == "basic" else NumpyHardwareCocoSketch
    return cls(2, l, seed=seed, kernels=backend)


def run_kernel_sweep(
    packets: int, flows: int, seed: int = 7, repeats: int = 2
) -> Dict:
    """Replace-stage kernel backends head to head on the staged pipeline.

    Runs each numpy variant once per available backend (``numpy``
    always; ``numba`` when importable) under a metrics registry, takes
    the best of *repeats* by replace-stage time, and reports both the
    stage-level speedup (``pipeline.stage.replace`` span, the tentpole
    gate) and the whole-pipeline packet rate.  Jit compilation happens
    in an explicit warmup before any timed run, and the recorded
    ``pipeline.kernel`` gauge is checked against the requested backend
    so the sweep can never silently measure the fallback path.
    """
    from repro.engine import kernels as kernels_mod

    trace = zipf_trace(packets, flows, alpha=1.05, seed=seed)
    backends = ["numpy"]
    if kernels_mod.numba_available():
        backends.append("numba")
    for _ in trace.batches(16384):  # warm the trace column cache
        break
    rows: List[List] = []
    speedups: Dict[str, float] = {}
    failures: List[str] = []
    for variant in ("basic", "hardware"):
        stats: Dict[str, Dict] = {}
        for backend in backends:
            kernels_mod.warmup(kernels_mod.resolve_kernels(backend))
            best = None
            for _ in range(repeats):
                sketch = _kernel_sketch(variant, backend, seed)
                with obs.collecting() as reg:
                    start = time.perf_counter()
                    sketch.process(trace)
                    elapsed = time.perf_counter() - start
                snap = reg.snapshot()
                gauge = snap["gauges"].get("pipeline.kernel")
                expected = kernels_mod.KERNEL_BACKEND_CODES[backend]
                if gauge != expected:
                    raise RuntimeError(
                        f"{variant}/{backend}: pipeline.kernel gauge is "
                        f"{gauge!r}, expected {expected!r} — dispatch "
                        "did not activate the requested backend"
                    )
                span = snap["spans"]["pipeline.stage.replace"]
                run = {
                    "pps": len(trace) / elapsed,
                    "replace_total_s": span["total_s"],
                    "chunks": span["count"],
                }
                if best is None or run["replace_total_s"] < best["replace_total_s"]:
                    best = run
            stats[backend] = best
        base = stats["numpy"]
        for backend in backends:
            st = stats[backend]
            replace_speedup = base["replace_total_s"] / st["replace_total_s"]
            rows.append(
                [
                    variant,
                    backend,
                    st["pps"],
                    st["replace_total_s"],
                    st["replace_total_s"] / max(st["chunks"], 1) * 1e6,
                    replace_speedup,
                    st["pps"] / base["pps"],
                ]
            )
            speedups[f"{variant}@{backend}"] = replace_speedup
        if "numba" in backends and packets >= 500_000:
            ratio = speedups[f"{variant}@numba"]
            if ratio < KERNEL_REPLACE_FLOOR:
                failures.append(
                    f"{variant}: compiled replace stage is {ratio:.2f}x "
                    f"staged-numpy (floor {KERNEL_REPLACE_FLOOR})"
                )
    return {
        "packets": packets,
        "flows": flows,
        "rows": rows,
        "speedups": speedups,
        "backends": backends,
        "numba_available": "numba" in backends,
        "floor": KERNEL_REPLACE_FLOOR,
        "ci_floor": KERNEL_REPLACE_CI_FLOOR,
        "failures": failures,
    }


def test_engine_batch_throughput(record):
    """Pytest entry: small sweep sized for CI, same JSON artifact."""
    sweep = run_sweep(packets=120_000, flows=40_000)
    record(
        "bench_engine_batch",
        "Engine throughput: scalar vs numpy by batch size",
        HEADERS,
        sweep["rows"],
        extra={"packets": sweep["packets"], "flows": sweep["flows"]},
    )
    # The acceptance 5x is measured at 500k packets (standalone mode);
    # at CI scale assert the direction with headroom to spare.
    assert sweep["speedups"]["basic@4096"] > 3.0
    assert sweep["speedups"]["hardware@4096"] > 3.0
    assert not sweep["cliff_failures"], "; ".join(sweep["cliff_failures"])


def test_obs_overhead(record):
    """Pytest entry: instrumented numpy must stay within 5% of plain.

    300k packets keeps each timed run ~25ms+ — at the engines' Mpps
    rates anything shorter drowns a 5% floor in scheduler noise.
    """
    sweep = run_obs_overhead(packets=300_000, flows=60_000)
    record(
        "bench_obs_overhead",
        "Observability overhead: numpy engine with metrics on vs off",
        OBS_HEADERS,
        sweep["rows"],
        extra={
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "floor": sweep["floor"],
        },
    )
    for variant, ratio in sweep["ratios"].items():
        assert ratio >= OBS_OVERHEAD_FLOOR, (
            f"{variant}: instrumented throughput is {ratio:.3f}x of "
            f"plain (floor {OBS_OVERHEAD_FLOOR})"
        )


def test_pipeline_stage_breakdown(record):
    """Pytest entry: per-stage pipeline timing, schema-validated."""
    sweep = run_pipeline_stages(packets=120_000, flows=40_000)
    record(
        "bench_pipeline_stages",
        "Staged pipeline: per-stage timing breakdown (numpy engines)",
        PIPELINE_HEADERS,
        sweep["rows"],
        extra={
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "variants": sweep["variants"],
        },
    )
    stages = {(row[0], row[1]) for row in sweep["rows"]}
    for variant in ("basic", "hardware"):
        for stage in ("hash", "replace", "stats"):
            assert (variant, stage) in stages, f"missing span {variant}/{stage}"
        assert sweep["variants"][variant]["chunks"] > 0


def test_kernel_sweep(record):
    """Pytest entry: kernel-backend sweep, same JSON artifact.

    Runs numpy-only where numba is absent (the artifact still records
    the fallback baseline); with numba present it additionally asserts
    the directional replace-stage floor — the 2x acceptance gate runs
    at full standalone scale.
    """
    sweep = run_kernel_sweep(packets=120_000, flows=40_000)
    record(
        "bench_kernels",
        "Replace-stage kernels: compiled vs numpy on the staged pipeline",
        KERNEL_HEADERS,
        sweep["rows"],
        extra={
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "backends": sweep["backends"],
            "numba_available": sweep["numba_available"],
            "floor": sweep["floor"],
            "ci_floor": sweep["ci_floor"],
        },
    )
    measured = {(row[0], row[1]) for row in sweep["rows"]}
    for variant in ("basic", "hardware"):
        assert (variant, "numpy") in measured
        if sweep["numba_available"]:
            assert (variant, "numba") in measured
            ratio = sweep["speedups"][f"{variant}@numba"]
            assert ratio >= KERNEL_REPLACE_CI_FLOOR, (
                f"{variant}: compiled replace stage is {ratio:.2f}x "
                f"staged-numpy (CI floor {KERNEL_REPLACE_CI_FLOOR})"
            )


def test_shard_sweep_scaling(record):
    """Pytest entry: CI-sized shard sweep, same JSON artifact."""
    sweep = run_shard_sweep(packets=120_000, flows=20_000, gate_trials=3)
    record(
        "bench_shard_sweep",
        "Sharded pipeline: throughput scaling and accuracy by shard count",
        SHARD_HEADERS,
        sweep["rows"],
        extra={
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "engine": sweep["engine"],
            "are_gate": sweep["are_gate"],
        },
    )
    by_shards = {row[0]: row for row in sweep["rows"]}
    # Fleet CPU capacity (one core per worker) must scale from 1 -> 4
    # workers; ~4x in practice, 2x leaves room for per-worker overhead.
    assert by_shards[4][4] > 2.0
    # Directional driver-overhead floor; the 0.75 acceptance gate runs
    # at full standalone scale where spawn cost amortises.
    assert sweep["driver_efficiency"][2] > 0.5, (
        f"2-shard driver efficiency {sweep['driver_efficiency'][2]:.2f} "
        "below the CI directional floor 0.5"
    )
    assert sweep["are_gate"]["passed"], sweep["are_gate"]["detail"]


def _print_shard_sweep(sweep: Dict) -> None:
    print(
        f"{'shards':>6} {'cap pps':>12} {'wall pps':>12} {'drv eff':>8} "
        f"{'scaling':>8} {'imbal':>6} {'ARE':>8}"
    )
    for shards, agg, wall, eff, scaling, imbal, are in sweep["rows"]:
        print(
            f"{shards:>6} {agg:>12.0f} {wall:>12.0f} {eff:>7.0%} "
            f"{scaling:>7.2f}x {imbal:>5.2f}x {are:>8.4f}"
        )
    print(f"ARE gate: {sweep['are_gate']['detail']}")


# -- adaptive sweep: governor vs best static geometry ------------------

ADAPTIVE_HEADERS = [
    "mode", "l start", "l final", "resizes", "post-shift ARE"
]

#: The governed daemon's post-shift ARE may exceed the static
#: reference's by at most 5% (plus the harness absolute floor).
ADAPTIVE_ARE_LIMIT = 1.05


def _best_static_geometry() -> tuple:
    """``(d, l)`` of the best-f1 row in the geometry ablation artifact.

    Falls back to the recorded optimum (d=8, l=1505 at ~200 KB) when
    ``results/ablation_geometry.json`` is absent, so the sweep runs on
    a fresh checkout.
    """
    path = (
        Path(__file__).resolve().parent.parent
        / "results"
        / "ablation_geometry.json"
    )
    try:
        rows = json.loads(path.read_text())["rows"]
        d, l, _f1 = max(rows, key=lambda row: row[2])
        return int(d), int(l)
    except (OSError, ValueError, KeyError):
        return 8, 1505


def run_adaptive_sweep(
    packets: int, flows: int, seed: int = 7, epochs: int = 8
) -> Dict:
    """Governed vs static daemon on a mid-run caida -> mawi shift.

    Both daemons see the identical packet sequence with identical epoch
    boundaries; accuracy is evaluated on the merged post-shift epochs
    (the geometry the governor *landed* on) over three partial keys.
    """
    from repro.control import GovernorConfig
    from repro.service import MeasurementDaemon, ServiceConfig
    from repro.sketches.base import COUNTER_BYTES, DEFAULT_KEY_BYTES
    from repro.traffic.synthetic import caida_like, mawi_like
    from repro.traffic.trace import Trace
    from tests.stat_harness import DEFAULT_ABS_FLOOR

    d, best_l = _best_static_geometry()
    memory = d * best_l * (DEFAULT_KEY_BYTES + COUNTER_BYTES)
    # Theorem 1 updates only the minimum of the d candidate buckets, so
    # the steady-state fraction of buckets holding a key falls with d
    # (at d=8 a saturated array sits near ~0.25, not ~1.0).  The CLI
    # defaults (0.70/0.25) are tuned for the default d=2 geometry; this
    # sweep runs the ablation's best d, so scale the thresholds down.
    governor_config = GovernorConfig(
        memory_bytes=memory,
        grow_occupancy=min(0.70, 2 * 0.70 / d),
        shrink_occupancy=min(0.25, 2 * 0.25 / d),
    )
    half = packets // 2
    head = caida_like(half, flows, seed=seed)
    tail = mawi_like(packets - half, max(256, flows // 3), seed=seed + 1)
    trace = Trace(FIVE_TUPLE, head.keys + tail.keys, name="adaptive-shift")
    epoch_packets = max(1, packets // epochs)

    def run(governed: bool):
        l0 = max(64, best_l // 8) if governed else best_l
        config = ServiceConfig(
            spec=SketchSpec(
                engine="numpy", variant="basic", d=d, l=l0, seed=seed
            ),
            key_spec=FIVE_TUPLE,
            shards=1,
            chunk=4096,
            epoch_packets=epoch_packets,
            governor=governor_config if governed else None,
        )
        daemon = MeasurementDaemon(config)
        for hi, lo, sizes in trace.batches(4096):
            daemon.ingest(hi, lo, sizes)
        daemon.close()
        return l0, daemon

    gov_l0, governed = run(True)
    static_l0, static = run(False)
    ids = governed.store.ids()
    assert ids == static.store.ids(), "epoch boundaries diverged"
    eval_ids = [
        e for e in ids if governed.store.get(e).start_seq >= half
    ]
    start = min(governed.store.get(e).start_seq for e in eval_ids)
    window = trace.slice(start, len(trace))
    specs = [
        FIVE_TUPLE.partial(("SrcIP", 16)),
        FIVE_TUPLE.partial("SrcIP"),
        FIVE_TUPLE.partial("SrcIP", "DstIP"),
    ]

    def window_are(daemon) -> float:
        planner = daemon.range_planner(eval_ids[0], eval_ids[-1])
        errors = []
        for pspec in specs:
            truth = window.ground_truth(pspec)
            ranked = sorted(truth.items(), key=lambda kv: -kv[1])[:30]
            table = planner.table(pspec)
            errors.extend(
                abs(table.lookup(key) - value) / value
                for key, value in ranked
            )
        return float(sum(errors) / len(errors))

    gov_are = window_are(governed)
    static_are = window_are(static)
    resizes = int(
        governed.metrics_snapshot()["counters"].get(
            "control.governor.resizes", 0
        )
    )
    limit = ADAPTIVE_ARE_LIMIT * static_are + DEFAULT_ABS_FLOOR
    passed = resizes >= 1 and gov_are <= limit
    detail = (
        f"governed ARE {gov_are:.4f} vs static {static_are:.4f} "
        f"(limit {limit:.4f} = {ADAPTIVE_ARE_LIMIT}x + "
        f"{DEFAULT_ABS_FLOOR} floor) after {resizes} resizes"
    )
    return {
        "packets": packets,
        "flows": flows,
        "memory_bytes": memory,
        "geometry": {"d": d, "best_static_l": best_l},
        "rows": [
            ["governed", gov_l0, governed.spec.l, resizes, gov_are],
            ["static", static_l0, static.spec.l, 0, static_are],
        ],
        "are_gate": {"passed": bool(passed), "detail": detail},
    }


def test_adaptive_sweep(record):
    """Pytest entry: CI-sized adaptive gate, same JSON artifact."""
    sweep = run_adaptive_sweep(packets=96_000, flows=16_000)
    record(
        "bench_adaptive",
        "Adaptive geometry: governor vs best static at equal memory",
        ADAPTIVE_HEADERS,
        sweep["rows"],
        extra={
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "memory_bytes": sweep["memory_bytes"],
            "geometry": sweep["geometry"],
            "are_gate": sweep["are_gate"],
        },
    )
    assert sweep["are_gate"]["passed"], sweep["are_gate"]["detail"]


def _print_adaptive(sweep: Dict) -> None:
    print(
        f"{'mode':<10} {'l start':>8} {'l final':>8} {'resizes':>8} "
        f"{'ARE':>8}"
    )
    for mode, l0, l1, resizes, are in sweep["rows"]:
        print(f"{mode:<10} {l0:>8} {l1:>8} {resizes:>8} {are:>8.4f}")
    print(f"adaptive gate: {sweep['are_gate']['detail']}")


def _drive_adaptive(args) -> tuple:
    sweep = run_adaptive_sweep(args.packets, args.flows, seed=args.seed)
    _print_adaptive(sweep)
    payload = {
        "title": "Adaptive geometry: governor vs best static at equal memory",
        "headers": ADAPTIVE_HEADERS,
        "rows": sweep["rows"],
        "extra": {
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "memory_bytes": sweep["memory_bytes"],
            "geometry": sweep["geometry"],
            "are_gate": sweep["are_gate"],
        },
    }
    failures = []
    if not sweep["are_gate"]["passed"]:
        failures.append("adaptive gate: " + sweep["are_gate"]["detail"])
    return payload, failures


# -- standalone sweep registry ----------------------------------------
#
# Every sweep is one entry: the ``--sweep`` key doubles as the CLI
# choice, ``results/<result_name>.json`` is the recorded artifact (the
# same name the pytest entry passes to ``record``), and the driver
# returns (rows-payload, failure-strings).  A non-empty failure list
# fails the process, so adding a sweep here inherits the floor-gate
# conventions instead of reinventing them.


def _drive_engine(args) -> tuple:
    sweep = run_sweep(args.packets, args.flows, seed=args.seed)
    print(f"{'variant':<10} {'engine':<8} {'batch':>7} {'pps':>12} {'speedup':>8}")
    for variant, engine, batch, pps, speedup in sweep["rows"]:
        print(f"{variant:<10} {engine:<8} {batch!s:>7} {pps:>12.0f} {speedup:>7.2f}x")
    payload = {
        "title": "Engine throughput: scalar vs numpy by batch size",
        "headers": HEADERS,
        "rows": sweep["rows"],
        "extra": {"packets": sweep["packets"], "flows": sweep["flows"]},
    }
    failures = [f"large-batch guard: {f}" for f in sweep["cliff_failures"]]
    return payload, failures


def _drive_shards(args) -> tuple:
    sweep = run_shard_sweep(args.packets, args.shard_flows, seed=args.seed)
    _print_shard_sweep(sweep)
    payload = {
        "title": "Sharded pipeline: throughput scaling and accuracy by shard count",
        "headers": SHARD_HEADERS,
        "rows": sweep["rows"],
        "extra": {
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "engine": sweep["engine"],
            "driver_efficiency": sweep["driver_efficiency"],
            "are_gate": sweep["are_gate"],
        },
    }
    failures = []
    if not sweep["are_gate"]["passed"]:
        failures.append("shard-sweep ARE gate: " + sweep["are_gate"]["detail"])
    # Driver-overhead gate at full scale only: below ~500k packets the
    # per-worker spawn cost dominates and the ratio is meaningless (the
    # CI smoke runs at 120k).
    efficiency = sweep["driver_efficiency"].get(2)
    if args.packets >= 500_000 and efficiency is not None:
        if efficiency < DRIVER_EFFICIENCY_FLOOR:
            failures.append(
                f"driver efficiency gate: {efficiency:.2f} at 2 shards "
                f"(floor {DRIVER_EFFICIENCY_FLOOR})"
            )
    return payload, failures


def _drive_obs(args) -> tuple:
    sweep = run_obs_overhead(args.packets, args.flows, seed=args.seed)
    print(f"{'variant':<10} {'plain pps':>12} {'instr pps':>12} {'ratio':>7}")
    for variant, plain, instrumented, ratio in sweep["rows"]:
        print(
            f"{variant:<10} {plain:>12.0f} {instrumented:>12.0f} "
            f"{ratio:>6.3f}x"
        )
    payload = {
        "title": "Observability overhead: numpy engine with metrics on vs off",
        "headers": OBS_HEADERS,
        "rows": sweep["rows"],
        "extra": {
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "floor": sweep["floor"],
        },
    }
    failures = [
        f"obs overhead gate: {variant} ratio {ratio:.3f} "
        f"(floor {OBS_OVERHEAD_FLOOR})"
        for variant, ratio in sweep["ratios"].items()
        if ratio < OBS_OVERHEAD_FLOOR
    ]
    return payload, failures


def _drive_pipeline(args) -> tuple:
    sweep = run_pipeline_stages(args.packets, args.flows, seed=args.seed)
    print(
        f"{'variant':<10} {'stage':<8} {'chunks':>7} {'total s':>9} "
        f"{'us/chunk':>9} {'share':>6}"
    )
    for variant, stage, chunks, total_s, mean_us, share in sweep["rows"]:
        print(
            f"{variant:<10} {stage:<8} {chunks:>7} {total_s:>9.4f} "
            f"{mean_us:>9.1f} {share:>5.0%}"
        )
    for variant, stats in sweep["variants"].items():
        print(
            f"{variant}: {stats['chunks']} chunks, "
            f"{stats['stalls']} stalls, {stats['pps']:,.0f} pps"
        )
    payload = {
        "title": "Staged pipeline: per-stage timing breakdown (numpy engines)",
        "headers": PIPELINE_HEADERS,
        "rows": sweep["rows"],
        "extra": {
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "variants": sweep["variants"],
        },
    }
    return payload, []


def _drive_kernels(args) -> tuple:
    sweep = run_kernel_sweep(args.packets, args.flows, seed=args.seed)
    print(
        f"{'variant':<10} {'kernel':<8} {'pps':>12} {'replace s':>10} "
        f"{'us/chunk':>9} {'repl x':>7} {'pipe x':>7}"
    )
    for variant, kernel, pps, total_s, mean_us, rx, px in sweep["rows"]:
        print(
            f"{variant:<10} {kernel:<8} {pps:>12.0f} {total_s:>10.4f} "
            f"{mean_us:>9.1f} {rx:>6.2f}x {px:>6.2f}x"
        )
    if not sweep["numba_available"]:
        print("numba not installed — numpy baseline only, no gate applied")
    payload = {
        "title": "Replace-stage kernels: compiled vs numpy on the staged pipeline",
        "headers": KERNEL_HEADERS,
        "rows": sweep["rows"],
        "extra": {
            "packets": sweep["packets"],
            "flows": sweep["flows"],
            "backends": sweep["backends"],
            "numba_available": sweep["numba_available"],
            "floor": sweep["floor"],
            "ci_floor": sweep["ci_floor"],
        },
    }
    failures = [f"kernel gate: {f}" for f in sweep["failures"]]
    return payload, failures


#: sweep key -> (results/ artifact stem, legacy out-flag dest, driver).
SWEEPS = {
    "engine": ("bench_engine_batch", "out", _drive_engine),
    "shards": ("bench_shard_sweep", "shard_out", _drive_shards),
    "obs": ("bench_obs_overhead", "obs_out", _drive_obs),
    "pipeline": ("bench_pipeline_stages", "pipeline_out", _drive_pipeline),
    "kernels": ("bench_kernels", "kernels_out", _drive_kernels),
    "adaptive": ("bench_adaptive", "adaptive_out", _drive_adaptive),
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=500_000)
    parser.add_argument("--flows", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--sweep",
        choices=tuple(SWEEPS) + ("all",),
        default="engine",
        help="which sweep(s) to run standalone",
    )
    parser.add_argument("--shard-flows", type=int, default=50_000)
    parser.add_argument(
        "--out-dir",
        default=str(Path(__file__).resolve().parent.parent / "results"),
        help="directory for the results/<sweep>.json artifacts",
    )
    for result_name, dest, _driver in SWEEPS.values():
        flag = "--" + dest.replace("_", "-")
        parser.add_argument(
            flag,
            default=None,
            help=f"override path for {result_name}.json",
        )
    args = parser.parse_args(argv)

    status = 0
    selected = tuple(SWEEPS) if args.sweep == "all" else (args.sweep,)
    for key in selected:
        result_name, dest, driver = SWEEPS[key]
        payload, failures = driver(args)
        override = getattr(args, dest)
        out = (
            Path(override)
            if override
            else Path(args.out_dir) / f"{result_name}.json"
        )
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2))
        print(f"\nwrote {out}")
        for failure in failures:
            print(f"{key} sweep FAILED: {failure}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
