"""Figure 17: CDF of absolute error under different d values.

(a) Basic CocoSketch d in {2, 3, 4} vs USS: larger d concentrates the
    error distribution (higher probability of small error) at the cost
    of a worse extreme tail — matching Theorem 3's tradeoff.
(b) Hardware-friendly CocoSketch d in {1..4}: same story; d does not
    affect hardware throughput, only the error distribution.
"""

from __future__ import annotations

import pytest

from _config import DEFAULT_MEMORY_KB, mem_bytes

from repro.core.cocosketch import BasicCocoSketch
from repro.core.hardware import HardwareCocoSketch
from repro.core.uss import UnbiasedSpaceSaving
from repro.metrics.cdf import error_cdf

QUANTILES = (0.95, 0.96, 0.97, 0.98, 0.99, 0.999)


def _cdf_for(sketch, caida):
    sketch.process(iter(caida))
    return error_cdf(sketch.flow_table(), caida.full_counts())


def _run(caida):
    memory = mem_bytes(DEFAULT_MEMORY_KB)
    basic = {
        f"d={d}": _cdf_for(
            BasicCocoSketch.from_memory(memory, d=d, seed=9), caida
        )
        for d in (2, 3, 4)
    }
    # "USS" = CocoSketch with d = total buckets (no aux-memory charge).
    basic["USS"] = _cdf_for(
        UnbiasedSpaceSaving(memory // 17, seed=9), caida
    )
    hardware = {
        f"d={d}": _cdf_for(
            HardwareCocoSketch.from_memory(memory, d=d, seed=9), caida
        )
        for d in (1, 2, 3, 4)
    }
    return basic, hardware


@pytest.mark.benchmark(group="fig17")
def test_fig17_error_cdf(benchmark, caida, record):
    basic, hardware = benchmark.pedantic(
        _run, args=(caida,), rounds=1, iterations=1
    )

    for name, cdfs in (("fig17a_basic", basic), ("fig17b_hardware", hardware)):
        record(
            name,
            f"Fig 17 {name.split('_')[1]} CocoSketch: absolute error at "
            "upper quantiles",
            ["config"] + [f"q{q}" for q in QUANTILES],
            [
                [label] + [cdf.quantile(q) for q in QUANTILES]
                for label, cdf in cdfs.items()
            ],
        )

    # Basic variant: more choices concentrate the error distribution.
    assert basic["d=4"].quantile(0.95) <= basic["d=2"].quantile(0.95)
    # USS (exact global min) is at least as concentrated as d = 2.
    assert basic["USS"].quantile(0.95) <= basic["d=2"].quantile(0.95) + 1
    # Hardware variant: d shifts mass between body and tail, but all
    # configurations live in the same regime (Theorem 3); the direction
    # of the body/tail tradeoff is workload-dependent (EXPERIMENTS.md).
    bodies = [hardware[f"d={d}"].quantile(0.95) for d in (1, 2, 3, 4)]
    assert max(bodies) <= 3 * min(bodies)
    tails = [hardware[f"d={d}"].worst(0.001) for d in (1, 2, 3, 4)]
    assert max(tails) <= 3 * min(tails)
    # The hardware variant's tail is heavier than the basic variant's
    # at equal d (the cost of removing circular dependencies).
    assert hardware["d=2"].worst(0.001) >= basic["d=2"].worst(0.001)
