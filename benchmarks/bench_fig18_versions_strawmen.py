"""Figure 18: (a) CocoSketch versions; (b) full-key-sketch strawmen.

(a) F1 vs memory for the basic, FPGA (hardware-friendly) and P4
    (approximate-division) variants.  Paper shape: basic best, gap to
    hardware <10 %, FPGA-vs-P4 gap <1 %.
(b) ARE on a full key (SrcIP) and a partial key (its /24 prefix) for
    CocoSketch vs "2*Elastic" / "Lossy" / "Full" (§2.3).  Paper shape:
    CocoSketch accurate on both; the strawmen acceptable on the full
    key but poor on the partial key.
"""

from __future__ import annotations

import pytest

from _config import HH_THRESHOLD, mem_bytes

from repro.core.cocosketch import BasicCocoSketch
from repro.core.hardware import HardwareCocoSketch, P4CocoSketch
from repro.flowkeys.fields import SRC_IP
from repro.flowkeys.key import FullKeySpec, paper_partial_keys
from repro.flowkeys.key import FIVE_TUPLE
from repro.metrics.accuracy import average_relative_error
from repro.sketches.elastic import ElasticSketch
from repro.sketches.strawmen import FullAggregationStrawman, LossyRecoveryStrawman
from repro.tasks.harness import FullKeyEstimator
from repro.tasks.heavy_hitter import average_report, heavy_hitter_task
from repro.traffic.trace import Trace

PAPER_MEMORY_KB_18A = (500, 1000, 1500, 2000)
VERSIONS = {
    "Basic": BasicCocoSketch,
    "FPGA": HardwareCocoSketch,
    "P4": P4CocoSketch,
}


def _run_versions(caida):
    keys = paper_partial_keys(6)
    results = {}
    for name, cls in VERSIONS.items():
        series = []
        for paper_kb in PAPER_MEMORY_KB_18A:
            est = FullKeyEstimator(
                cls.from_memory(mem_bytes(paper_kb), d=2, seed=10), FIVE_TUPLE
            )
            series.append(
                average_report(
                    heavy_hitter_task(est, caida, keys, HH_THRESHOLD)
                ).f1
            )
        results[name] = series
    return results


@pytest.mark.benchmark(group="fig18")
def test_fig18a_versions(benchmark, caida, record):
    results = benchmark.pedantic(
        _run_versions, args=(caida,), rounds=1, iterations=1
    )
    record(
        "fig18a_versions",
        "Fig 18(a) CocoSketch versions: F1 vs memory (paper KB)",
        ["version"] + [f"{kb}KB" for kb in PAPER_MEMORY_KB_18A],
        [[name] + series for name, series in results.items()],
    )
    for i in range(len(PAPER_MEMORY_KB_18A)):
        basic, fpga, p4 = (
            results["Basic"][i],
            results["FPGA"][i],
            results["P4"][i],
        )
        # Basic best; FPGA ~ P4 (approximate division is harmless).
        assert basic >= fpga - 0.02
        assert abs(fpga - p4) < 0.05
    # The basic-vs-hardware gap narrows as memory grows (paper: <10 %
    # at its operating points; our scaled-down regime starts tighter on
    # memory, so the smallest point shows a larger gap -- see
    # EXPERIMENTS.md).
    gaps = [
        results["Basic"][i] - results["FPGA"][i]
        for i in range(len(PAPER_MEMORY_KB_18A))
    ]
    assert gaps[-1] < 0.15
    assert gaps[-1] <= gaps[0]
    assert results["FPGA"][-1] > 0.8


SRC_IP_SPEC = FullKeySpec((SRC_IP,))


def _run_strawmen(caida):
    """Fig 18(b): full key = SrcIP, partial key = its /24 prefix.

    Memory: the paper uses 6 MB against a 27M-packet trace; scaled to
    this bench's 200k-packet trace, 384 KB keeps the same loading
    (packets per counter / flows per bucket).  Keys are 32-bit SrcIPs,
    so buckets are accounted at 4 key bytes.
    """
    memory = 384 * 1024
    src_trace = Trace(
        SRC_IP_SPEC,
        [key >> 72 for key in caida.keys],
        caida.sizes,
        name="caida-srcip",
    )
    full_pk = SRC_IP_SPEC.identity_partial()
    prefix_pk = SRC_IP_SPEC.partial(("SrcIP", 24))
    truth_full = src_trace.ground_truth(full_pk)
    truth_prefix = src_trace.ground_truth(prefix_pk)
    # "Full" recovery queries the whole preimage *domain*: all 256
    # addresses of every observed /24 (§2.3's point -- each unobserved
    # address still returns sketch noise that accumulates).
    candidates = [
        (prefix << 8) | host
        for prefix in truth_prefix
        for host in range(256)
    ]

    def ares(table_full, table_prefix):
        return (
            average_relative_error(table_full, truth_full),
            average_relative_error(table_prefix, truth_prefix),
        )

    results = {}

    coco = BasicCocoSketch.from_memory(memory, d=2, seed=11, key_bytes=4)
    coco.process(iter(src_trace))
    est = FullKeyEstimator(coco, SRC_IP_SPEC)
    results["Ours"] = ares(est.table(full_pk), est.table(prefix_pk))

    # "2*Elastic": one Elastic per key, memory split.
    e_full = ElasticSketch.from_memory(memory // 2, seed=11, key_bytes=4)
    e_pref = ElasticSketch.from_memory(memory // 2, seed=12, key_bytes=4)
    g = prefix_pk.mapper()
    for key, size in src_trace:
        e_full.update(key, size)
        e_pref.update(g(key), size)
    results["2*Elastic"] = ares(e_full.flow_table(), e_pref.flow_table())

    lossy = LossyRecoveryStrawman(memory, seed=11, key_bytes=4)
    lossy.process(iter(src_trace))
    results["Lossy"] = ares(
        lossy.table_for(full_pk), lossy.table_for(prefix_pk)
    )

    full = FullAggregationStrawman(memory, seed=11)
    full.process(iter(src_trace))
    results["Full"] = ares(
        full.table_for(full_pk, candidates),
        full.table_for(prefix_pk, candidates),
    )
    return results


@pytest.mark.benchmark(group="fig18")
def test_fig18b_fullkey_strawmen(benchmark, caida, record):
    results = benchmark.pedantic(
        _run_strawmen, args=(caida,), rounds=1, iterations=1
    )
    record(
        "fig18b_strawmen",
        "Fig 18(b) full-key sketch strawmen: ARE on SrcIP (full) and /24 "
        "prefix (partial)",
        ["solution", "ARE full key", "ARE partial key"],
        [[name, full, prefix] for name, (full, prefix) in results.items()],
    )
    ours_full, ours_prefix = results["Ours"]
    # CocoSketch accurate on both keys (ARE over all distinct flows).
    assert ours_full < 0.1
    assert ours_prefix < 0.1
    # Every strawman is much worse on the partial key than CocoSketch.
    for name in ("2*Elastic", "Lossy", "Full"):
        assert results[name][1] > 3 * ours_prefix
    # "Full" specifically degrades from full key to partial key (the
    # aggregated per-candidate noise), the paper's headline point.
    assert results["Full"][1] > 2 * results["Full"][0]
