"""Figure 14: CPU throughput (Mpps) and 95th-pct per-packet latency.

Absolute Mpps in Python are not the paper's C++ numbers; the *shape* is
what the figure establishes and what this bench asserts: CocoSketch's
(and USS's) throughput is flat in the number of keys while every
per-key baseline degrades roughly linearly, leaving CocoSketch the
fastest at 6 keys — and the mirror image holds for tail latency.
"""

from __future__ import annotations

import pytest

import _config
from _config import DEFAULT_MEMORY_KB, HH_ALGORITHMS, make_estimator, mem_bytes

from repro.flowkeys.key import paper_partial_keys
from repro.metrics.throughput import (
    columnar_batches,
    measure_batch_throughput,
    measure_throughput,
)
from repro.tasks.harness import FullKeyEstimator

KEY_COUNTS = (1, 2, 3, 4, 5, 6)
TIMING_PACKETS = 40_000


def _updater(estimator):
    if isinstance(estimator, FullKeyEstimator):
        return estimator.sketch.update
    return estimator.bank.update


def _measure(estimator, packets, batches):
    """Per-packet loop, or the columnar batch path for vectorised sketches."""
    if (
        isinstance(estimator, FullKeyEstimator)
        and estimator.sketch.vectorized
        and batches is not None
    ):
        return measure_batch_throughput(estimator.sketch.update_batch, batches)
    return measure_throughput(_updater(estimator), packets)


def _run(caida):
    memory = mem_bytes(DEFAULT_MEMORY_KB)
    packets = list(caida)[:TIMING_PACKETS]
    # Pre-pack once when the configured engine is vectorised; the
    # packing cost belongs to the traffic layer (Trace caches it too).
    batches = (
        columnar_batches(packets, _config.BATCH_SIZE)
        if _config.ENGINE != "scalar"
        else None
    )
    mpps = {}
    p95 = {}
    for algo in HH_ALGORITHMS:
        mpps[algo] = []
        p95[algo] = []
        for n in KEY_COUNTS:
            keys = paper_partial_keys(n)
            estimator = make_estimator(algo, memory, keys, seed=7)
            result = _measure(estimator, packets, batches)
            mpps[algo].append(result.mpps)
            p95[algo].append(result.p95_ns)
    return mpps, p95


@pytest.mark.benchmark(group="fig14")
def test_fig14_cpu_throughput_and_latency(benchmark, caida, record):
    mpps, p95 = benchmark.pedantic(_run, args=(caida,), rounds=1, iterations=1)

    engine_info = {"engine": _config.ENGINE, "batch_size": _config.BATCH_SIZE}
    record(
        "fig14a_throughput",
        "Fig 14(a) CPU throughput (Mpps, Python scale) vs number of keys",
        ["algorithm"] + [str(n) for n in KEY_COUNTS],
        [[algo] + series for algo, series in mpps.items()],
        extra=engine_info,
    )
    record(
        "fig14b_p95_latency",
        "Fig 14(b) 95th-pct per-packet latency (ns) vs number of keys",
        ["algorithm"] + [str(n) for n in KEY_COUNTS],
        [[algo] + series for algo, series in p95.items()],
        extra=engine_info,
    )

    ours = mpps["Ours"]
    # Flat in the number of keys (within measurement noise).
    assert min(ours) > 0.6 * max(ours)
    assert min(mpps["USS"]) > 0.5 * max(mpps["USS"])
    # Per-key baselines degrade with more keys...
    for algo in ("C-Heap", "CM-Heap", "Elastic", "UnivMon"):
        assert mpps[algo][-1] < 0.45 * mpps[algo][0]
        # ...and CocoSketch is faster than all of them at 6 keys.
        assert ours[-1] > mpps[algo][-1]
        # Tail latency mirror image.
        assert p95["Ours"][-1] < p95[algo][-1]
    # USS note: the paper's C++ optimised USS is ~3x slower than
    # CocoSketch because its auxiliary structures cost extra memory
    # accesses (§7.3).  In Python, dict operations are cheap relative
    # to hashing+RNG, so the fast-engine USS lands *on par with* Ours
    # and the ordering is not a stable property of this substrate —
    # the throughput collapse the paper leans on is the naive engine's
    # (asserted in Fig 16).  Here we assert only what transfers: USS
    # stays within the same order of magnitude as Ours while every
    # per-key baseline has fallen well below both.
    assert mpps["USS"][-1] > 3 * mpps["UnivMon"][-1]
    assert mpps["USS"][-1] < 10 * ours[-1]
