"""Figure 16: basic CocoSketch with d = 1..6 vs. USS (d = all buckets).

Paper shape: F1 changes only marginally with d (95.3 % at d = 2), while
throughput falls as d grows and collapses for USS (<0.1 Mpps naive —
CocoSketch with maximal d *is* USS).
"""

from __future__ import annotations

import pytest

from _config import DEFAULT_MEMORY_KB, HH_THRESHOLD, mem_bytes

from repro.core.cocosketch import BasicCocoSketch
from repro.core.uss import UnbiasedSpaceSaving
from repro.flowkeys.key import FIVE_TUPLE, paper_partial_keys
from repro.metrics.throughput import measure_throughput
from repro.tasks.harness import FullKeyEstimator
from repro.tasks.heavy_hitter import average_report, heavy_hitter_task

D_VALUES = (1, 2, 3, 4, 5, 6)
TIMING_PACKETS = 30_000
NAIVE_TIMING_PACKETS = 2_000


def _run(caida):
    memory = mem_bytes(DEFAULT_MEMORY_KB)
    keys = paper_partial_keys(6)
    packets = list(caida)
    f1 = {}
    mpps = {}
    for d in D_VALUES:
        sketch = BasicCocoSketch.from_memory(memory, d=d, seed=8)
        est = FullKeyEstimator(sketch, FIVE_TUPLE)
        f1[f"d={d}"] = average_report(
            heavy_hitter_task(est, caida, keys, HH_THRESHOLD)
        ).f1
        timing_sketch = BasicCocoSketch.from_memory(memory, d=d, seed=8)
        mpps[f"d={d}"] = measure_throughput(
            timing_sketch.update, packets[:TIMING_PACKETS]
        ).mpps

    # "USS" in Fig 16/17 means CocoSketch with d = the total number of
    # buckets (the paper's framing), so it gets the full bucket budget
    # with no auxiliary-memory charge.  Its naive engine is timed on a
    # shorter prefix (it is orders of magnitude slower).
    total_buckets = memory // 17  # key (13 B) + counter (4 B)
    uss = UnbiasedSpaceSaving(total_buckets, seed=8)
    est = FullKeyEstimator(uss, FIVE_TUPLE)
    f1["USS"] = average_report(
        heavy_hitter_task(est, caida, keys, HH_THRESHOLD)
    ).f1
    # Naive-engine timing: in the paper's regime (27M packets, ~1M+
    # flows) the table is full almost immediately, so the O(n) min-scan
    # path dominates.  Reproduce that steady state directly: prefill to
    # capacity, then time a stream of previously unseen flows.
    naive = UnbiasedSpaceSaving(total_buckets, seed=8, engine="naive")
    for i in range(total_buckets):
        naive.update(1 << 104 | i, 1)
    fresh = [((2 << 104) | i, 1) for i in range(NAIVE_TIMING_PACKETS)]
    mpps["USS"] = measure_throughput(naive.update, fresh).mpps
    return f1, mpps


@pytest.mark.benchmark(group="fig16")
def test_fig16_vary_d_basic(benchmark, caida, record):
    f1, mpps = benchmark.pedantic(_run, args=(caida,), rounds=1, iterations=1)

    labels = list(f1)
    record(
        "fig16",
        "Fig 16 basic CocoSketch: F1 and throughput vs d (500 KB scale)",
        ["config", "f1", "mpps"],
        [[label, f1[label], mpps[label]] for label in labels],
    )

    # F1 only marginally affected by d once there are >= 2 choices;
    # d = 1 (no power-of-d) sits visibly lower (Fig 16a's left bar).
    d_f1 = [f1[f"d={d}"] for d in D_VALUES[1:]]
    assert max(d_f1) - min(d_f1) < 0.08
    assert f1["d=1"] > 0.7
    assert f1["USS"] > 0.8  # matches CocoSketch accuracy (Fig 16a)
    # Throughput decreases with d (compare the extremes with margin —
    # adjacent pairs are within wall-clock noise) and collapses for
    # (naive) USS.
    assert max(mpps["d=1"], mpps["d=2"]) > 1.5 * mpps["d=6"]
    assert mpps["USS"] < 0.1 * mpps["d=6"]
