"""Figure 15: platform results — OVS, FPGA throughput/resources, P4.

(a) OVS ring-buffer deployment saturates the 40 GbE NIC from 2 threads.
(b) FPGA: hardware-friendly (pipelined) CocoSketch ~5x the basic
    variant's throughput; ~150 Mpps at 2 MB.
(c) FPGA resources: CocoSketch needs ~5.8 % BRAM and ~45x fewer
    registers than 6x Elastic (~34 % BRAM).
(d) P4/Tofino resources: CocoSketch 6.25 % stateful ALUs for any
    number of keys; Elastic 18.75 % per key, at most 4 instances.
"""

from __future__ import annotations

import pytest

import _config
from _config import mem_bytes

from repro.engine import get_engine
from repro.hwsim.fpga import FpgaModel
from repro.hwsim.ovs import OvsSimulation
from repro.hwsim.rmt import RmtChip, sketch_rmt_usage
from repro.metrics.throughput import (
    columnar_batches,
    measure_batch_throughput,
    measure_throughput,
)


def _engine_calibration(caida, packets=20_000):
    """Single-thread Mpps of the configured software engine.

    Fig 15(a)'s curve comes from the ring-buffer model (the paper's OVS
    numbers are a property of the deployment, not of this Python
    substrate), but recording the measured per-thread update rate of
    the configured engine alongside it shows what feeds the model's
    ``per_thread_mpps`` knob on each engine.
    """
    stream = list(caida)[:packets]
    sketch = get_engine(_config.ENGINE).cocosketch_from_memory(
        mem_bytes(500), d=2, seed=7
    )
    if sketch.vectorized:
        result = measure_batch_throughput(
            sketch.update_batch, columnar_batches(stream, _config.BATCH_SIZE)
        )
    else:
        result = measure_throughput(sketch.update, stream)
    return result.mpps


@pytest.mark.benchmark(group="fig15")
def test_fig15a_ovs_throughput(benchmark, caida, record):
    sim = OvsSimulation(per_thread_mpps=7.0, nic_cap_mpps=12.5)
    curve = benchmark.pedantic(sim.throughput_curve, args=(4,), rounds=1, iterations=1)
    record(
        "fig15a_ovs",
        "Fig 15(a) OVS throughput (Mpps) vs polling threads",
        ["threads", "delivered_mpps", "dropped_mpps", "ring_occupancy"],
        [
            [r.threads, r.delivered_mpps, r.dropped_mpps, r.mean_ring_occupancy]
            for r in curve
        ],
        extra={
            "engine": _config.ENGINE,
            "engine_single_thread_mpps": _engine_calibration(caida),
        },
    )
    assert curve[0].delivered_mpps < 0.6 * 12.5
    for point in curve[1:]:
        assert point.delivered_mpps == pytest.approx(12.5, rel=0.05)


@pytest.mark.benchmark(group="fig15")
def test_fig15b_fpga_throughput(benchmark, record):
    model = FpgaModel()
    memories_mb = (0.25, 0.5, 1.0, 2.0)

    def run():
        return {
            variant: [
                model.throughput_mpps(variant, int(mb * 1024 * 1024))
                for mb in memories_mb
            ]
            for variant in ("hardware", "basic")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "fig15b_fpga_throughput",
        "Fig 15(b) FPGA throughput (Mpps) vs memory (MB)",
        ["variant"] + [f"{mb}MB" for mb in memories_mb],
        [[v] + series for v, series in results.items()],
    )
    for hw, basic in zip(results["hardware"], results["basic"]):
        assert 4 <= hw / basic <= 6
    assert results["hardware"][-1] == pytest.approx(150, rel=0.15)


@pytest.mark.benchmark(group="fig15")
def test_fig15c_fpga_resources(benchmark, record):
    model = FpgaModel()

    def run():
        coco = model.cocosketch_resources(500 * 1024, d=2)
        elastic1 = model.elastic_resources(512 * 1024)
        elastic6 = elastic1.scaled(6)
        return {
            "Ours": model.device.utilisation(coco),
            "Elastic": model.device.utilisation(elastic1),
            "6*Elastic": model.device.utilisation(elastic6),
        }

    util = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["design", "Registers", "LUTs", "Block RAM"]
    record(
        "fig15c_fpga_resources",
        "Fig 15(c) FPGA resource usage (fraction of U280)",
        headers,
        [
            [name, u["Registers"], u["LUTs"], u["Block RAM"]]
            for name, u in util.items()
        ],
    )
    # 6 keys: CocoSketch registers ~45x smaller, BRAM 5.8% vs 34%.
    assert util["6*Elastic"]["Registers"] / util["Ours"]["Registers"] > 20
    assert util["Ours"]["Block RAM"] == pytest.approx(0.058, abs=0.01)
    assert util["6*Elastic"]["Block RAM"] == pytest.approx(0.34, abs=0.05)


@pytest.mark.benchmark(group="fig15")
def test_fig15d_p4_resources(benchmark, record):
    chip = RmtChip()

    def run():
        coco = sketch_rmt_usage("cocosketch", 200 * 1024, d=2)
        elastic1 = sketch_rmt_usage("elastic", 200 * 1024)
        return {
            "Ours": chip.utilisation(coco),
            "Elastic": chip.utilisation(elastic1),
            "4*Elastic": chip.utilisation(elastic1.scaled(4)),
        }, chip.max_instances(sketch_rmt_usage("elastic", 200 * 1024))

    util, max_elastic = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["design", "SRAM", "Map RAM", "Stateful ALU"]
    record(
        "fig15d_p4_resources",
        "Fig 15(d) Tofino resource usage (fraction of chip)",
        headers,
        [
            [name, u["SRAM"], u["Map RAM"], u["Stateful ALU"]]
            for name, u in util.items()
        ],
        extra={"max_elastic_instances": max_elastic},
    )
    assert util["Ours"]["Stateful ALU"] == pytest.approx(0.0625, abs=0.001)
    assert util["Elastic"]["Stateful ALU"] == pytest.approx(0.1875, abs=0.001)
    assert util["4*Elastic"]["Stateful ALU"] == pytest.approx(0.75, abs=0.001)
    assert max_elastic == 4
