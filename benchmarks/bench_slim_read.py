"""Slim-replica read latency vs fat serialize-and-extract under load.

The fat/slim split exists for exactly one reason: answering a live
query off the fat sketches means freezing the shard state and folding
it through export + merge while the ingest lock is held — cost
proportional to the full table (``d x l`` per shard), paid on every
refresh, with ingestion stalled behind it.  The slim replica instead
applies the compact per-chunk deltas the engines already emit, so a
read costs the drained delta rows plus a concat of cached shard
tables.

This bench runs both read paths against the *same* daemon while a
feeder thread ingests at full rate (``live_refresh_packets=0`` so
every read pays its view's true rebuild cost), interleaving fat and
slim reads so machine noise hits both alike.  Each sample is the full
user-visible query: resolve the live planner, project a partial key,
extract the top-10.

Acceptance gate: slim p95 read latency at least ``GATE``x (3x) better
than fat p95.  Recorded to ``results/bench_slim_read.json``.

Runs two ways:

* ``pytest benchmarks/bench_slim_read.py`` — records the JSON like
  every other bench.
* ``python benchmarks/bench_slim_read.py --reads 50`` — standalone.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.sharded import SketchSpec  # noqa: E402
from repro.flowkeys.key import FIVE_TUPLE  # noqa: E402
from repro.service import MeasurementDaemon, ServiceConfig  # noqa: E402
from repro.traffic.synthetic import zipf_trace  # noqa: E402

#: Acceptance gate: fat_p95 / slim_p95 must be at least this.
GATE = 3.0

# Big-table geometry: the fat path's cost scales with d*l per shard,
# the slim path's with delta rows per drain — this is the regime the
# split targets (large sketch, steady ingest, dashboard-rate reads).
FLOWS = 8_000
L = 65_536
D = 2
SHARDS = 2
CHUNK = 4_096
PACKETS = 40 * CHUNK
READS = 30
WARMUP = 3

HEADERS = ["view", "reads", "p50_s", "p95_s", "speedup"]

_TITLE = "Live read latency under full-rate ingest: slim replica vs fat extract"


def _percentiles(samples: List[float]) -> Dict[str, float]:
    arr = np.asarray(samples, dtype=np.float64)
    return {
        "p50_s": float(np.percentile(arr, 50)),
        "p95_s": float(np.percentile(arr, 95)),
    }


def run_bench(reads: int = READS) -> Dict:
    trace = zipf_trace(PACKETS, FLOWS, alpha=1.1, seed=9)
    config = ServiceConfig(
        spec=SketchSpec(engine="numpy", variant="basic", d=D, l=L, seed=5),
        key_spec=FIVE_TUPLE,
        shards=SHARDS,
        chunk=CHUNK,
        live_refresh_packets=0,  # every read pays its true rebuild cost
    )
    daemon = MeasurementDaemon(config)
    partial = FIVE_TUPLE.partial(("SrcIP", 16))

    # Prime: one full pass so the tables are dense before timing starts.
    for hi, lo, sizes in trace.batches(CHUNK):
        daemon.ingest(hi, lo, sizes)

    stop = threading.Event()

    def feeder() -> None:
        while not stop.is_set():
            for hi, lo, sizes in trace.batches(CHUNK):
                if stop.is_set():
                    return
                daemon.ingest(hi, lo, sizes)

    def measure(view: str) -> float:
        start = time.perf_counter()
        _, planner = daemon.live_planner(view=view)
        planner.table(partial).top_k(10)
        return time.perf_counter() - start

    latencies: Dict[str, List[float]] = {"fat": [], "slim": []}
    feed = threading.Thread(target=feeder, daemon=True)
    feed.start()
    try:
        for view in latencies:
            for _ in range(WARMUP):
                measure(view)
        # Interleave so ingest pressure and machine noise hit both
        # read paths alike.
        for _ in range(reads):
            for view in ("fat", "slim"):
                latencies[view].append(measure(view))
    finally:
        stop.set()
        feed.join(timeout=60)
    snap = daemon.metrics_snapshot()
    daemon.close()

    fat = _percentiles(latencies["fat"])
    slim = _percentiles(latencies["slim"])
    speedup = fat["p95_s"] / slim["p95_s"]
    rows = [
        ["fat-extract", reads, fat["p50_s"], fat["p95_s"], 1.0],
        ["slim-replica", reads, slim["p50_s"], slim["p95_s"], speedup],
    ]
    counters = snap["counters"]
    return {
        "rows": rows,
        "speedup": speedup,
        "ingested_packets": counters["service.ingest.packets"],
        "slim_deltas": counters["slim.sync.deltas"],
        "slim_compactions": counters.get("slim.sync.compactions", 0),
    }


def _extra(bench: Dict) -> Dict:
    return {
        "flows": FLOWS,
        "l": L,
        "d": D,
        "shards": SHARDS,
        "chunk": CHUNK,
        "gate": GATE,
        "ingested_packets": bench["ingested_packets"],
        "slim_deltas": bench["slim_deltas"],
        "slim_compactions": bench["slim_compactions"],
    }


def test_slim_read_latency(record):
    """Pytest entry: slim p95 at least GATE x better than fat p95."""
    bench = run_bench()
    record(
        "bench_slim_read", _TITLE, HEADERS, bench["rows"], extra=_extra(bench)
    )
    assert bench["speedup"] >= GATE, (
        f"slim replica only {bench['speedup']:.2f}x faster at p95 "
        f"(gate {GATE}x)"
    )
    assert bench["slim_deltas"] > 0, "replica never synced a delta"


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reads", type=int, default=READS)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent
            / "results"
            / "bench_slim_read.json"
        ),
    )
    args = parser.parse_args(argv)

    bench = run_bench(args.reads)
    print(f"{'view':<14} {'reads':>6} {'p50_s':>10} {'p95_s':>10} {'rel':>7}")
    for view, reads, p50, p95, rel in bench["rows"]:
        print(f"{view:<14} {reads:>6} {p50:>10.5f} {p95:>10.5f} {rel:>6.2f}x")
    print(
        f"deltas={bench['slim_deltas']} "
        f"compactions={bench['slim_compactions']} "
        f"ingested={bench['ingested_packets']}"
    )

    payload = {
        "title": _TITLE,
        "headers": HEADERS,
        "rows": bench["rows"],
        "extra": _extra(bench),
    }
    out = Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    if bench["speedup"] < GATE:
        print(
            f"latency gate FAILED: {bench['speedup']:.2f}x < {GATE}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
