"""Benchmark fixtures: shared traces, result recording, summary output.

Every bench test records the table/series it regenerates via the
``record`` fixture; results are written to ``results/<name>.json`` and
re-printed in the terminal summary (so ``pytest benchmarks/
--benchmark-only | tee bench_output.txt`` captures the figures' data
alongside the timing tables).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Sequence

import pytest

sys.path.insert(0, str(Path(__file__).parent))

import _config  # noqa: E402
from _config import CAIDA_FLOWS, CAIDA_PACKETS, MAWI_FLOWS, MAWI_PACKETS  # noqa: E402

from repro.engine import available_engines  # noqa: E402
from repro.traffic.synthetic import caida_like, mawi_like  # noqa: E402

_RECORDED: List[str] = []


def pytest_addoption(parser):
    parser.addoption(
        "--engine",
        choices=available_engines(),
        default=None,
        help="execution engine for the 'Ours' update path "
        "(default: REPRO_ENGINE env var or 'scalar')",
    )
    parser.addoption(
        "--batch-size",
        type=int,
        default=None,
        help="packets per update_batch call on vectorised engines",
    )


def pytest_configure(config):
    # Rewrite the _config module attributes so benches reading
    # _config.ENGINE at call time see the CLI override.
    engine = config.getoption("--engine")
    if engine is not None:
        _config.ENGINE = engine
    batch_size = config.getoption("--batch-size")
    if batch_size is not None:
        _config.BATCH_SIZE = batch_size


@pytest.fixture(scope="session")
def caida():
    """The CAIDA-like evaluation trace (DESIGN.md §2 substitution)."""
    return caida_like(num_packets=CAIDA_PACKETS, num_flows=CAIDA_FLOWS, seed=7)


@pytest.fixture(scope="session")
def mawi():
    """The MAWI-like evaluation trace."""
    return mawi_like(num_packets=MAWI_PACKETS, num_flows=MAWI_FLOWS, seed=11)


@pytest.fixture(scope="session")
def results_dir():
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table for the terminal summary."""
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@pytest.fixture
def record(results_dir):
    """record(name, title, headers, rows, extra=None) -> saves + queues."""

    def _record(
        name: str,
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence],
        extra: Dict = None,
    ) -> None:
        payload = {"title": title, "headers": list(headers), "rows": [list(r) for r in rows]}
        if extra:
            payload["extra"] = extra
        (results_dir / f"{name}.json").write_text(json.dumps(payload, indent=2))
        _RECORDED.append(format_table(title, headers, rows))

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _RECORDED:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for block in _RECORDED:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
