"""Service benchmark: daemon ingestion vs the batch StreamDriver.

The measurement daemon adds epoch accounting, chunk re-blocking, lock
acquisition and live-view serving on top of the raw sharded
:class:`~repro.parallel.StreamDriver`.  This bench measures what that
costs: the same trace is pushed through

* the **batch baseline** — partition + ``StreamDriver.send`` per chunk,
  no rotation, no locks, no HTTP; and
* the **daemon** — ``MeasurementDaemon.ingest`` with packet-count epoch
  rotation *while* an HTTP client hammers ``/query``/``/topk`` against
  the live view and frozen epochs (serving enabled, as deployed).

Acceptance gate: daemon ingestion throughput stays within 10% of the
batch baseline (``DAEMON_FLOOR``).  The recorded JSON also carries the
query-side soak latency stats (p50/p95/p99 from the daemon's own
``service.query.seconds`` histogram) so a regression in either plane
shows up in ``results/bench_service.json``.

Runs two ways:

* ``pytest benchmarks/bench_service.py`` — records
  ``results/bench_service.json`` like every other bench.
* ``python benchmarks/bench_service.py --packets 400000`` — standalone.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
import urllib.parse
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.sharded import SketchSpec, partition_columns  # noqa: E402
from repro.flowkeys.key import FIVE_TUPLE  # noqa: E402
from repro.obs.registry import histogram_quantile  # noqa: E402
from repro.parallel import StreamDriver  # noqa: E402
from repro.service import (  # noqa: E402
    MeasurementDaemon,
    ServiceConfig,
    ServiceServer,
)
from repro.traffic.synthetic import zipf_trace  # noqa: E402

#: Acceptance gate: daemon pps >= DAEMON_FLOOR * batch-baseline pps.
DAEMON_FLOOR = 0.9

SHARDS = 2
CHUNK = 16_384
# Chunk-aligned rotation schedule: 120 chunks of traffic, epochs of 40,
# so the run closes exactly 3 epochs with no partial-chunk tail flush.
PACKETS = 120 * CHUNK
FLOWS = 100_000
EPOCH_PACKETS = 40 * CHUNK
LIVE_REFRESH = 4 * CHUNK  # serve cached live views between refreshes
L = 1_024

HEADERS = ["path", "packets", "seconds", "pps", "relative"]

_BENCH_SQL = urllib.parse.quote(
    "SELECT SrcIP/16, SUM(size) FROM flows GROUP BY SrcIP/16 "
    "ORDER BY SUM(size) DESC LIMIT 10"
)


def _spec(seed: int = 5) -> SketchSpec:
    return SketchSpec(engine="numpy", variant="basic", d=2, l=L, seed=seed)


def time_batch_baseline(trace, repeats: int) -> float:
    """Partition + send per chunk, straight into the sharded driver."""
    best = float("inf")
    spec = _spec()
    for _ in range(repeats):
        driver = StreamDriver(
            spec, SHARDS, processes=False, batch_size=CHUNK
        )
        start = time.perf_counter()
        offset = 0
        for hi, lo, sizes in trace.batches(CHUNK):
            parts = partition_columns(
                hi, lo, sizes, SHARDS, "hash", spec.seed, offset=offset
            )
            for shard, (shi, slo, ssz) in enumerate(parts):
                if len(ssz):
                    driver.send(shard, shi, slo, ssz)
            offset += len(sizes)
        driver.results()
        best = min(best, time.perf_counter() - start)
    return best


def _query_hammer(host: str, port: int, stop: threading.Event) -> List:
    """Steady mixed query load against the live view and frozen epochs.

    Uses one keep-alive connection, like a monitoring dashboard would —
    per-request TCP setup and server thread spawns are not what this
    bench is trying to measure.
    """
    served = [0]

    def loop():
        conn = http.client.HTTPConnection(host, port, timeout=10)
        paths = [
            "/topk?key=SrcIP/16&k=10",
            f"/query?sql={_BENCH_SQL}",
            "/epochs",
        ]
        n = 0
        try:
            while not stop.is_set():
                try:
                    conn.request("GET", paths[n % len(paths)])
                    conn.getresponse().read()
                except OSError:
                    if stop.is_set():
                        break
                    raise
                served[0] += 1
                n += 1
                time.sleep(0.02)
        finally:
            conn.close()

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    served.append(thread)  # joined by the caller via served[1]
    return served


def time_daemon(trace, repeats: int) -> Dict:
    """Daemon ingestion with rotation and live HTTP serving enabled."""
    best = float("inf")
    latency: Dict = {}
    for _ in range(repeats):
        config = ServiceConfig(
            spec=_spec(),
            key_spec=FIVE_TUPLE,
            shards=SHARDS,
            chunk=CHUNK,
            epoch_packets=EPOCH_PACKETS,
            live_refresh_packets=LIVE_REFRESH,
        )
        daemon = MeasurementDaemon(config)
        server = ServiceServer(daemon).start()
        stop = threading.Event()
        hammer = _query_hammer(server.host, server.port, stop)
        try:
            start = time.perf_counter()
            for hi, lo, sizes in trace.batches(CHUNK):
                daemon.ingest(hi, lo, sizes)
            daemon.close()
            elapsed = time.perf_counter() - start
        finally:
            stop.set()
            hammer[1].join()
            server.close()
        if elapsed < best:
            best = elapsed
            hist = daemon.metrics_snapshot()["histograms"].get(
                "service.query.seconds"
            )
            latency = {
                "queries": hammer[0],
                "epochs": len(daemon.store),
            }
            if hist:
                latency.update(
                    {
                        "p50_s": histogram_quantile(hist, 0.50),
                        "p95_s": histogram_quantile(hist, 0.95),
                        "p99_s": histogram_quantile(hist, 0.99),
                    }
                )
    return {"seconds": best, **latency}


def run_bench(packets: int = PACKETS, repeats: int = 4) -> Dict:
    trace = zipf_trace(packets, FLOWS, alpha=1.1, seed=9)
    # Interleave the two paths' repeats so transient machine noise hits
    # both sides alike; best-of-repeats on each.
    batch_s = float("inf")
    daemon: Dict = {"seconds": float("inf")}
    for _ in range(repeats):
        batch_s = min(batch_s, time_batch_baseline(trace, 1))
        candidate = time_daemon(trace, 1)
        if candidate["seconds"] < daemon["seconds"]:
            daemon = candidate
    daemon_s = daemon["seconds"]
    relative = batch_s / daemon_s  # >1 means the daemon is faster
    rows = [
        ["batch-driver", packets, batch_s, packets / batch_s, 1.0],
        ["daemon+http", packets, daemon_s, packets / daemon_s, relative],
    ]
    return {
        "rows": rows,
        "relative": relative,
        "soak": {k: v for k, v in daemon.items() if k != "seconds"},
    }


_TITLE = "Service daemon ingestion vs batch StreamDriver (serving enabled)"


def _extra(bench: Dict) -> Dict:
    return {
        "shards": SHARDS,
        "chunk": CHUNK,
        "epoch_packets": EPOCH_PACKETS,
        "live_refresh_packets": LIVE_REFRESH,
        "floor": DAEMON_FLOOR,
        "soak": bench["soak"],
    }


def test_service_throughput(record):
    """Pytest entry: daemon ingestion within 10% of the batch driver."""
    bench = run_bench()
    record("bench_service", _TITLE, HEADERS, bench["rows"], extra=_extra(bench))
    assert bench["relative"] >= DAEMON_FLOOR, (
        f"daemon ingestion at {bench['relative']:.2f}x the batch baseline "
        f"(floor {DAEMON_FLOOR}x)"
    )
    assert bench["soak"]["queries"] > 0, "query hammer never ran"


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=PACKETS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent
            / "results"
            / "bench_service.json"
        ),
    )
    args = parser.parse_args(argv)

    bench = run_bench(args.packets, repeats=args.repeats)
    print(f"{'path':<14} {'packets':>8} {'seconds':>9} {'pps':>12} {'rel':>6}")
    for path, packets, seconds, pps, rel in bench["rows"]:
        print(
            f"{path:<14} {packets:>8} {seconds:>9.3f} {pps:>12.0f} "
            f"{rel:>5.2f}x"
        )
    print(f"soak: {bench['soak']}")

    payload = {
        "title": _TITLE,
        "headers": HEADERS,
        "rows": bench["rows"],
        "extra": _extra(bench),
    }
    out = Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    if bench["relative"] < DAEMON_FLOOR:
        print(
            f"throughput gate FAILED: {bench['relative']:.2f}x < "
            f"{DAEMON_FLOOR}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
