"""Query-plane benchmark: columnar vs dict partial-key aggregation.

The §4.3 control plane answers a 1-d HHH query by aggregating the
full-key flow table onto every SrcIP bit prefix — 33 partial keys (the
32 prefixes plus the full 5-tuple).  Pre-refactor that was 33 python
dict walks under ``PartialKeySpec.mapper``; the columnar query plane
(:mod:`repro.query`) runs one extraction plus 33 vectorised
projection + sort/reduceat group-bys.  This bench times both paths on
the same synthetic full-key table and gates the columnar path at >= 5x
at 100k+ distinct flows.

Runs two ways:

* ``pytest benchmarks/bench_query_plane.py`` — records
  ``results/bench_query_plane.json`` like every other bench.
* ``python benchmarks/bench_query_plane.py --flows 200000`` —
  standalone sweep printing the table and writing the same JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.flowkeys.key import FIVE_TUPLE, prefix_hierarchy  # noqa: E402
from repro.query import ColumnTable, QueryPlanner  # noqa: E402

#: The 1-d HHH query load: every SrcIP prefix plus the full key.
HHH_SPECS = prefix_hierarchy(FIVE_TUPLE, "SrcIP") + [
    FIVE_TUPLE.partial(*(f.name for f in FIVE_TUPLE.fields))
]

#: Acceptance gate: columnar aggregation >= 5x the dict path.
SPEEDUP_FLOOR = 5.0

HEADERS = ["path", "flows", "specs", "seconds", "speedup"]


def synthetic_flow_table(flows: int, seed: int) -> ColumnTable:
    """A full-key table of *flows* distinct keys with heavy-tailed sizes.

    Keys are uniform over the 104-bit 5-tuple space (deduplicated, so
    the row count is exact); sizes follow a Pareto tail like the flow
    tables the sketches actually extract.
    """
    rng = np.random.default_rng(seed)
    n = flows
    while True:
        hi = rng.integers(0, 1 << 40, size=n, dtype=np.uint64)
        lo = rng.integers(0, 1 << 63, size=n, dtype=np.uint64) * 2 + (
            rng.integers(0, 2, size=n, dtype=np.uint64)
        )
        packed = np.stack([hi, lo], axis=1)
        uniq = np.unique(packed, axis=0)
        if len(uniq) >= flows:
            break
        n += flows - len(uniq) + 16
    hi, lo = uniq[:flows, 0], uniq[:flows, 1]
    values = np.floor(rng.pareto(1.1, size=flows) + 1.0)
    return ColumnTable.from_key_columns(hi, lo, values, FIVE_TUPLE).group()


def time_dict_path(sizes: Dict[int, float], specs) -> float:
    """The pre-refactor control plane: one mapper dict-walk per spec."""
    start = time.perf_counter()
    for partial in specs:
        g = partial.mapper()
        out: Dict[int, float] = {}
        for key, size in sizes.items():
            mapped = g(key)
            out[mapped] = out.get(mapped, 0.0) + size
    return time.perf_counter() - start


def time_columnar_path(table: ColumnTable, specs) -> float:
    """The columnar query plane: one planner session over all specs."""
    start = time.perf_counter()
    planner = QueryPlanner(table, FIVE_TUPLE)
    for partial in specs:
        planner.table(partial)
    return time.perf_counter() - start


def run_bench(flows: int, seed: int = 11, repeats: int = 3) -> Dict:
    """Best-of-*repeats* timings for both paths on one table."""
    table = synthetic_flow_table(flows, seed)
    sizes = table.to_dict()

    # Equality spot-check before timing: both paths must agree exactly.
    check_spec = HHH_SPECS[len(HHH_SPECS) // 2]
    g = check_spec.mapper()
    reference: Dict[int, float] = {}
    for key, size in sizes.items():
        mapped = g(key)
        reference[mapped] = reference.get(mapped, 0.0) + size
    columnar = QueryPlanner(table, FIVE_TUPLE).sizes(check_spec)
    if columnar != reference:
        raise AssertionError(
            f"columnar != dict aggregation on {check_spec.name}"
        )

    dict_s = min(time_dict_path(sizes, HHH_SPECS) for _ in range(repeats))
    col_s = min(
        time_columnar_path(table, HHH_SPECS) for _ in range(repeats)
    )
    speedup = dict_s / col_s
    rows = [
        ["dict", flows, len(HHH_SPECS), dict_s, 1.0],
        ["columnar", flows, len(HHH_SPECS), col_s, speedup],
    ]
    return {
        "flows": flows,
        "specs": len(HHH_SPECS),
        "rows": rows,
        "speedup": speedup,
    }


def test_query_plane_speedup(record):
    """Pytest entry: 100k-flow 1-d HHH aggregation, columnar >= 5x."""
    bench = run_bench(flows=100_000)
    record(
        "bench_query_plane",
        "Query plane: dict vs columnar 1-d HHH aggregation (33 specs)",
        HEADERS,
        bench["rows"],
        extra={
            "flows": bench["flows"],
            "specs": bench["specs"],
            "speedup_floor": SPEEDUP_FLOOR,
        },
    )
    assert bench["speedup"] >= SPEEDUP_FLOOR, (
        f"columnar path is only {bench['speedup']:.1f}x the dict path "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--flows", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent
            / "results"
            / "bench_query_plane.json"
        ),
    )
    args = parser.parse_args(argv)

    bench = run_bench(args.flows, seed=args.seed, repeats=args.repeats)
    print(f"{'path':<10} {'flows':>8} {'specs':>6} {'seconds':>9} {'speedup':>8}")
    for path, flows, specs, seconds, speedup in bench["rows"]:
        print(
            f"{path:<10} {flows:>8} {specs:>6} {seconds:>9.3f} "
            f"{speedup:>7.2f}x"
        )

    payload = {
        "title": "Query plane: dict vs columnar 1-d HHH aggregation (33 specs)",
        "headers": HEADERS,
        "rows": bench["rows"],
        "extra": {
            "flows": bench["flows"],
            "specs": bench["specs"],
            "speedup_floor": SPEEDUP_FLOOR,
        },
    }
    out = Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    if bench["speedup"] < SPEEDUP_FLOOR:
        print(
            f"speedup gate FAILED: {bench['speedup']:.1f}x < "
            f"{SPEEDUP_FLOOR}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
