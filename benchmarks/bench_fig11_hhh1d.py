"""Figure 11: 1-d HHH (SrcIP bit hierarchy) F1 / ARE vs. memory.

CocoSketch vs R-HHH only — the paper drops the other baselines because
their throughput collapses at 32 simultaneous keys.  Paper shape: at
the smallest memory CocoSketch's F1 is already >99 %, R-HHH stays
~50 % even with 5x the memory, and the ARE gap is orders of magnitude.
"""

from __future__ import annotations

import pytest

from _config import mem_bytes

from repro.core.cocosketch import BasicCocoSketch
from repro.flowkeys.key import FIVE_TUPLE, prefix_hierarchy
from repro.sketches.rhhh import RandomizedHHH
from repro.tasks.harness import FullKeyEstimator, HierarchyEstimator
from repro.tasks.hhh import hhh_task

PAPER_MEMORY_KB = (500, 1000, 1500, 2000, 2500)
HHH_THRESHOLD = 1e-3


def _run(caida):
    hierarchy = prefix_hierarchy(FIVE_TUPLE, "SrcIP", granularity=1)
    ours, rhhh = [], []
    for paper_kb in PAPER_MEMORY_KB:
        memory = mem_bytes(paper_kb)
        est = FullKeyEstimator(
            BasicCocoSketch.from_memory(memory, d=2, seed=4), FIVE_TUPLE
        )
        ours.append(hhh_task(est, caida, hierarchy, HHH_THRESHOLD))
        est_r = HierarchyEstimator(RandomizedHHH(hierarchy, memory, seed=4))
        rhhh.append(hhh_task(est_r, caida, hierarchy, HHH_THRESHOLD))
    return ours, rhhh


@pytest.mark.benchmark(group="fig11")
def test_fig11_hhh_1d(benchmark, caida, record):
    ours, rhhh = benchmark.pedantic(_run, args=(caida,), rounds=1, iterations=1)

    for metric in ("f1", "are"):
        rows = [
            ["Ours"] + [getattr(r, metric) for r in ours],
            ["RHHH"] + [getattr(r, metric) for r in rhhh],
        ]
        record(
            f"fig11_{metric}",
            f"Fig 11 1-d HHH (32 SrcIP prefixes): {metric} vs memory (paper KB)",
            ["algorithm"] + [f"{kb}KB" for kb in PAPER_MEMORY_KB],
            rows,
        )

    # CocoSketch near-perfect from the smallest memory point.
    assert all(r.f1 > 0.95 for r in ours)
    # R-HHH far behind at every point: even with 5x the memory it does
    # not reach CocoSketch's smallest-memory F1.
    assert all(r.f1 < ours[0].f1 for r in rhhh)
    assert rhhh[0].f1 < 0.7
    # ARE gap is orders of magnitude (paper: ~1902x in its regime).
    assert rhhh[0].are > 20 * ours[0].are
    assert rhhh[-1].are > 20 * ours[-1].are
