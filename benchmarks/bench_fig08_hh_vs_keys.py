"""Figure 8: heavy-hitter RR / PR / ARE vs. number of partial keys.

Paper shape: CocoSketch's recall and precision stay >95 % for 1-6 keys
while every per-key baseline degrades as its memory is split further;
USS matches CocoSketch's recall but loses precision to its 4x
auxiliary-memory overhead; averaged ARE of CocoSketch is ~10x better.
"""

from __future__ import annotations

import pytest

from _config import DEFAULT_MEMORY_KB, HH_ALGORITHMS, HH_THRESHOLD, make_estimator, mem_bytes

from repro.flowkeys.key import paper_partial_keys
from repro.tasks.heavy_hitter import average_report, heavy_hitter_task

KEY_COUNTS = (1, 2, 3, 4, 5, 6)


def _run(caida):
    memory = mem_bytes(DEFAULT_MEMORY_KB)
    results = {}
    for algo in HH_ALGORITHMS:
        series = []
        for n in KEY_COUNTS:
            keys = paper_partial_keys(n)
            estimator = make_estimator(algo, memory, keys, seed=1)
            avg = average_report(
                heavy_hitter_task(estimator, caida, keys, HH_THRESHOLD)
            )
            series.append(avg)
        results[algo] = series
    return results


@pytest.mark.benchmark(group="fig08")
def test_fig08_heavy_hitters_vs_keys(benchmark, caida, record):
    results = benchmark.pedantic(_run, args=(caida,), rounds=1, iterations=1)

    for metric, attr in (("recall", "recall"), ("precision", "precision"), ("are", "are")):
        rows = [
            [algo] + [getattr(r, attr) for r in series]
            for algo, series in results.items()
        ]
        record(
            f"fig08_{metric}",
            f"Fig 8 heavy hitters: {metric} vs number of keys "
            f"({DEFAULT_MEMORY_KB} KB paper scale)",
            ["algorithm"] + [str(n) for n in KEY_COUNTS],
            rows,
        )

    ours = results["Ours"]
    # CocoSketch stays accurate regardless of the number of keys.
    assert all(r.recall > 0.9 for r in ours)
    assert all(r.precision > 0.8 for r in ours)
    # At 6 keys CocoSketch beats every per-key baseline on F1 and ARE.
    for algo in ("SS", "C-Heap", "CM-Heap", "Elastic", "UnivMon"):
        assert ours[-1].f1 > results[algo][-1].f1
        assert ours[-1].are < results[algo][-1].are
    # USS: recall competitive, precision hurt by auxiliary memory.
    assert results["USS"][-1].precision < ours[-1].precision
    # Averaged ARE advantage is large (paper: ~9.6x).
    baseline_are = [
        results[a][-1].are for a in HH_ALGORITHMS if a != "Ours"
    ]
    assert min(baseline_are) > 2 * ours[-1].are
