#!/usr/bin/env python3
"""Super-spreader / SYN-flood detection with distinct counting.

§2.1 motivates counting *distinct* SrcIPs per destination (SYN-flood
detection); §8 leaves distinct counting as future work.  This example
runs the repository's extension: a Bloom first-occurrence gate in
front of a CocoSketch, aggregated on the DstIP partial key, flags the
destination contacted by the most distinct sources.

Run:  python examples/super_spreader_detection.py
"""

from __future__ import annotations

import random

from repro import FIVE_TUPLE, caida_like
from repro.extensions.distinct import DistinctCocoSketch
from repro.flowkeys.fields import format_ipv4, parse_ipv4
from repro.traffic.trace import Trace

VICTIM = parse_ipv4("198.51.100.23")
ATTACK_SOURCES = 3_000


def build_trace() -> Trace:
    background = caida_like(num_packets=120_000, num_flows=30_000, seed=55)
    rng = random.Random(99)
    keys = list(background.keys)
    # A SYN flood: each spoofed source sends a handful of packets.
    for src in rng.sample(range(1, 1 << 32), ATTACK_SOURCES):
        for _ in range(rng.randint(1, 3)):
            keys.append(
                FIVE_TUPLE.pack(src, VICTIM, rng.randrange(1024, 65536), 80, 6)
            )
    rng.shuffle(keys)
    return Trace(FIVE_TUPLE, keys, None, name="syn-flood-window")


def main() -> None:
    trace = build_trace()
    print(f"Window: {trace}")

    sketch = DistinctCocoSketch(
        FIVE_TUPLE,
        memory_bytes=512 * 1024,
        expected_flows=80_000,
        seed=4,
    )
    sketch.process(iter(trace))
    print(
        f"Memory: {sketch.memory_bytes() // 1024} KB "
        f"(Bloom gate {sketch.filter.memory_bytes() // 1024} KB + sketch), "
        f"expected Bloom FP rate now {sketch.filter.expected_fp_rate():.3%}"
    )

    dst = FIVE_TUPLE.partial("DstIP")
    dst_src = FIVE_TUPLE.partial("SrcIP", "DstIP")

    # Ground truth: exact distinct full-key flows per destination.
    truth = {}
    for key in trace.full_counts():
        truth[dst.map(key)] = truth.get(dst.map(key), 0) + 1

    print("\nDestinations by distinct contacting flows (top 5):")
    table = sketch.distinct_table(dst)
    for key, est in sorted(table.items(), key=lambda kv: -kv[1])[:5]:
        flag = "  <-- SYN-flood victim" if key == VICTIM else ""
        print(
            f"  {format_ipv4(key):15s} ~{est:7.0f} distinct flows "
            f"(exact: {truth.get(key, 0):5d}){flag}"
        )

    spreaders = sketch.super_spreaders(dst, threshold=1_000)
    print(f"\nSuper-spreader alarms (>=1000 distinct flows): "
          f"{[format_ipv4(k) for k in spreaders]}")
    assert VICTIM in spreaders


if __name__ == "__main__":
    main()
