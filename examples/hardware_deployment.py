#!/usr/bin/env python3
"""Hardware deployment planning with the platform models (§3.3, §6, §7.4).

Walks through the feasibility questions the paper answers for its
Tofino / FPGA / OVS ports:

1. Why the *basic* CocoSketch cannot compile to an RMT pipeline
   (circular dependencies) and the hardware-friendly variant can.
2. How much of a Tofino the hardware-friendly CocoSketch uses vs.
   per-key Elastic sketches, and how many of each fit.
3. Expected FPGA throughput and resources for both variants.
4. How many OVS polling threads are needed to hold 40 GbE line rate.

Run:  python examples/hardware_deployment.py
"""

from __future__ import annotations

from repro.hwsim.fpga import FpgaModel
from repro.hwsim.ovs import OvsSimulation
from repro.hwsim.rmt import (
    RmtChip,
    basic_cocosketch_program,
    hardware_cocosketch_program,
    sketch_rmt_usage,
)


def section(title: str) -> None:
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def main() -> None:
    section("1. RMT pipeline layout (circular dependency check)")
    basic = basic_cocosketch_program(d=2)
    hw = hardware_cocosketch_program(d=2)
    print("basic CocoSketch layout on 12 stages:",
          basic.layout(12) or "IMPOSSIBLE (circular dependencies)")
    layout = hw.layout(12)
    print("hardware-friendly layout on 12 stages:")
    for register, stage in sorted(layout.items(), key=lambda kv: kv[1]):
        print(f"  stage {stage}: {register}")
    print("note: each bucket's value stage precedes its key stage (§4.2)")

    section("2. Tofino resource budget (6 partial keys)")
    chip = RmtChip()
    coco = sketch_rmt_usage("cocosketch", 200 * 1024, d=2)
    elastic = sketch_rmt_usage("elastic", 200 * 1024)
    print(f"{'resource':24s} {'CocoSketch x1':>14s} {'Elastic x1':>11s}")
    for res, util in chip.utilisation(coco).items():
        print(f"{res:24s} {util:14.2%} "
              f"{chip.utilisation(elastic)[res]:11.2%}")
    print(f"\nCocoSketch instances needed for 6 keys: 1 (fits: "
          f"{chip.fits(coco)})")
    print(f"Elastic instances needed for 6 keys: 6 (fit: "
          f"{chip.fits(elastic.scaled(6))}, compiler places at most "
          f"{chip.max_instances(elastic)})")

    section("3. FPGA (Alveo U280) throughput and resources")
    model = FpgaModel()
    print(f"{'memory':>8s} {'hardware-friendly':>18s} {'basic':>10s}")
    for mb in (0.25, 0.5, 1.0, 2.0):
        mem = int(mb * 1024 * 1024)
        print(f"{mb:6.2f}MB "
              f"{model.throughput_mpps('hardware', mem):15.0f} Mpps "
              f"{model.throughput_mpps('basic', mem):7.0f} Mpps")
    res = model.cocosketch_resources(2 * 1024 * 1024, d=2)
    util = model.device.utilisation(res)
    print("\n2MB hardware-friendly CocoSketch on U280:")
    for name, fraction in util.items():
        print(f"  {name:10s} {fraction:7.3%}")

    section("4. OVS polling threads for 40GbE line rate")
    sim = OvsSimulation(per_thread_mpps=7.0, nic_cap_mpps=12.5)
    print(f"{'threads':>8s} {'delivered':>10s} {'dropped':>9s} "
          f"{'ring occupancy':>15s}")
    for result in sim.throughput_curve(4):
        print(f"{result.threads:8d} {result.delivered_mpps:7.1f}Mpps "
              f"{result.dropped_mpps:6.1f}Mpps "
              f"{result.mean_ring_occupancy:15.1%}")
    print("=> two polling threads already saturate the NIC (Fig 15a)")


if __name__ == "__main__":
    main()
