#!/usr/bin/env python3
"""Network-wide measurement: merge sketches from many vantage points.

Four edge switches each run their own CocoSketch over their local
slice of the traffic.  A collector merges the four sketches (unbiased
bucket-fold, see repro.extensions.merging), compresses the result for
export, and answers partial-key queries about the *network-wide*
traffic — no packet ever crosses the network twice.

Run:  python examples/distributed_measurement.py
"""

from __future__ import annotations

from repro import BasicCocoSketch, FIVE_TUPLE, FlowTable, caida_like
from repro.extensions.merging import compress_cocosketch, merge_cocosketch
from repro.flowkeys.fields import format_ipv4

NUM_SWITCHES = 4


def main() -> None:
    trace = caida_like(num_packets=160_000, num_flows=30_000, seed=21)
    print(f"Network-wide traffic: {trace}")

    # Shard packets across switches (as ECMP or topology would).
    shards = [
        trace.slice(
            i * len(trace) // NUM_SWITCHES,
            (i + 1) * len(trace) // NUM_SWITCHES,
            name=f"switch-{i}",
        )
        for i in range(NUM_SWITCHES)
    ]

    # Same geometry + hash seed everywhere, as a deployment would push.
    print(f"\nEach of {NUM_SWITCHES} switches runs a 2x4096-bucket "
          "CocoSketch (~136 KB):")
    sketches = []
    for shard in shards:
        sketch = BasicCocoSketch(d=2, l=4096, seed=33)
        sketch.process(iter(shard))
        sketches.append(sketch)
        print(f"  {shard.name}: {len(shard)} packets, "
              f"{len(sketch.flow_table())} flows recorded")

    # Collector: pairwise unbiased merge.
    merged = sketches[0]
    for other in sketches[1:]:
        merged = merge_cocosketch(merged, other, seed=1)
    print(f"\nMerged sketch holds the whole network's "
          f"{sum(len(s) for s in shards)} packets.")

    table = FlowTable.from_sketch(merged, FIVE_TUPLE)
    src = FIVE_TUPLE.partial("SrcIP")
    truth = trace.ground_truth(src)
    print("\nNetwork-wide top-5 sources from the merged sketch:")
    for key, est in table.aggregate(src).top_k(5):
        print(f"  {format_ipv4(key):15s} estimated {est:8.0f} "
              f"(true {truth.get(key, 0):6d})")

    # Compress 4x before shipping to long-term storage.
    small = compress_cocosketch(merged, 4, seed=2)
    small_table = FlowTable.from_sketch(small, FIVE_TUPLE)
    print(f"\nAfter 4x compression ({small.memory_bytes() // 1024} KB), "
          "the same query still works:")
    for key, est in small_table.aggregate(src).top_k(5):
        print(f"  {format_ipv4(key):15s} estimated {est:8.0f} "
              f"(true {truth.get(key, 0):6d})")


if __name__ == "__main__":
    main()
