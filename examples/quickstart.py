#!/usr/bin/env python3
"""Quickstart: one sketch, any partial key.

Deploys a single 200 KB CocoSketch on the 5-tuple full key, processes a
synthetic CAIDA-like trace, then answers queries on keys that were
never named before measurement — the paper's "late binding" promise.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BasicCocoSketch, FIVE_TUPLE, FlowTable, caida_like
from repro.flowkeys.fields import format_ipv4


def main() -> None:
    print("Generating a CAIDA-like trace (120k packets)...")
    trace = caida_like(num_packets=120_000, num_flows=30_000, seed=42)
    print(f"  {trace}")

    print("\nDeploying one 200 KB CocoSketch on the 5-tuple full key...")
    sketch = BasicCocoSketch.from_memory(200 * 1024, d=2, seed=1)
    sketch.process(iter(trace))
    print(f"  {len(sketch.flow_table())} flows recorded, "
          f"occupancy {sketch.occupancy():.1%}")

    # Step 3 (§4.3): build the (FullKey, Size) table once.
    table = FlowTable.from_sketch(sketch, FIVE_TUPLE)

    # Step 4: aggregate onto partial keys chosen *after* measurement.
    print("\nTop-5 source IPs (partial key: SrcIP):")
    src_ip = FIVE_TUPLE.partial("SrcIP")
    truth = trace.ground_truth(src_ip)
    for key, est in table.aggregate(src_ip).top_k(5):
        print(
            f"  {format_ipv4(key):15s} estimated {est:8.0f} "
            f"(true {truth[key]:6d})"
        )

    print("\nTop-5 /16 source prefixes (partial key: SrcIP/16):")
    prefix16 = FIVE_TUPLE.partial(("SrcIP", 16))
    truth16 = trace.ground_truth(prefix16)
    for key, est in table.aggregate(prefix16).top_k(5):
        ip = format_ipv4(key << 16)
        print(
            f"  {ip.rsplit('.', 2)[0] + '.0.0/16':18s} estimated {est:8.0f} "
            f"(true {truth16[key]:6d})"
        )

    print("\nTop-5 host pairs (partial key: SrcIP+DstIP):")
    pair = FIVE_TUPLE.partial("SrcIP", "DstIP")
    pair_truth = trace.ground_truth(pair)
    for key, est in table.aggregate(pair).top_k(5):
        src, dst = pair.unpack(key)
        print(
            f"  {format_ipv4(src):15s} -> {format_ipv4(dst):15s} "
            f"estimated {est:8.0f} (true {pair_truth[key]:6d})"
        )

    print(
        "\nOne sketch answered three different keys; none were "
        "configured before the measurement started."
    )


if __name__ == "__main__":
    main()
