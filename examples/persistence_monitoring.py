#!/usr/bin/env python3
"""Low-and-slow scanner detection via persistence (related-work task).

Volume-based heavy hitters miss adversaries who deliberately stay
small: a scanner that probes a handful of addresses per minute never
crosses a heavy-hitter threshold.  Persistence — appearing in *many*
measurement windows — is the complementary signal (the On-Off sketch's
task, here answered from windowed CocoSketch tables on the SrcIP
partial key, with no extra data-plane state).

Run:  python examples/persistence_monitoring.py
"""

from __future__ import annotations

import random

from repro import BasicCocoSketch, FIVE_TUPLE
from repro.extensions.windowed import WindowedMeasurement
from repro.flowkeys.fields import format_ipv4, parse_ipv4
from repro.tasks.persistence import PersistenceTracker
from repro.traffic.synthetic import zipf_trace

SCANNER = parse_ipv4("192.0.2.66")
NUM_WINDOWS = 8
PACKETS_PER_WINDOW = 25_000


def window_traffic(window: int):
    """One epoch: fresh Zipf background + the scanner's trickle."""
    rng = random.Random(1_000 + window)
    trace = zipf_trace(
        PACKETS_PER_WINDOW, 6_000, alpha=1.1, seed=2_000 + window
    )
    packets = [(key, 1) for key in trace.keys]
    # The scanner probes ~15 addresses per window: far below any
    # volume threshold, but present every single window.
    for _ in range(15):
        probe = FIVE_TUPLE.pack(
            SCANNER, rng.getrandbits(32), rng.randrange(1024, 65536), 22, 6
        )
        packets.insert(rng.randrange(len(packets)), (probe, 1))
    return packets


def main() -> None:
    windows = WindowedMeasurement(
        lambda: BasicCocoSketch.from_memory(192 * 1024, seed=12),
        FIVE_TUPLE,
        history=1,
    )
    tracker = PersistenceTracker(
        FIVE_TUPLE.partial("SrcIP"),
        window_span=NUM_WINDOWS,
        presence_floor=2.0,
    )

    print(f"Processing {NUM_WINDOWS} windows of "
          f"{PACKETS_PER_WINDOW} packets...")
    for window in range(NUM_WINDOWS):
        for key, size in window_traffic(window):
            windows.update(key, size)
        tracker.observe_window(windows.rotate())

    print("\nMost persistent sources (windows present / volume signal):")
    for src, count in tracker.top_persistent(8):
        flag = "  <-- scanner" if src == SCANNER else ""
        print(f"  {format_ipv4(src):15s} present in {count}/{NUM_WINDOWS} "
              f"windows{flag}")

    persistent = tracker.persistent_flows(NUM_WINDOWS)
    print(f"\nSources present in every window: {len(persistent)}")
    assert SCANNER in persistent
    print(
        f"The scanner sent only ~15 packets per {PACKETS_PER_WINDOW}-packet "
        "window — invisible to volume thresholds, unmistakable on "
        "persistence."
    )


if __name__ == "__main__":
    main()
