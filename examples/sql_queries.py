#!/usr/bin/env python3
"""The paper's SQL interface, live (§4.3).

The paper expresses partial-key queries as SQL over the recovered
(FullKey, Size) table:

    SELECT g(k_F), SUM(Size) FROM table GROUP BY g(k_F)

This example measures a trace once and answers a series of operator
questions written literally as SQL.

Run:  python examples/sql_queries.py
"""

from __future__ import annotations

from repro import BasicCocoSketch, FIVE_TUPLE, FlowTable, caida_like
from repro.core.sql import run_query
from repro.flowkeys.fields import format_ipv4


def main() -> None:
    trace = caida_like(num_packets=120_000, num_flows=30_000, seed=17)
    sketch = BasicCocoSketch.from_memory(200 * 1024, d=2, seed=1)
    sketch.process(iter(trace))
    table = FlowTable.from_sketch(sketch, FIVE_TUPLE)
    print(f"Measured {trace}; {len(table)} flows recovered.\n")

    queries = [
        (
            "Top sources",
            "SELECT SrcIP, SUM(size) FROM flows GROUP BY SrcIP "
            "ORDER BY SUM(size) DESC LIMIT 5",
            lambda value: format_ipv4(value),
        ),
        (
            "Top /16 source blocks",
            "SELECT SrcIP/16, SUM(size) FROM flows GROUP BY SrcIP/16 "
            "ORDER BY SUM(size) DESC LIMIT 5",
            lambda value: format_ipv4(value << 16) + "/16",
        ),
        (
            "Busy HTTPS servers (DstPort = 443)",
            "SELECT DstIP, SUM(size) FROM flows WHERE DstPort = 443 "
            "GROUP BY DstIP ORDER BY SUM(size) DESC LIMIT 5",
            lambda value: format_ipv4(value),
        ),
        (
            "Fan-out: flows per source in 10.0.0.0/8-like block",
            "SELECT SrcIP, COUNT(*) FROM flows GROUP BY SrcIP "
            "HAVING SUM(size) >= 2 ORDER BY SUM(size) DESC LIMIT 5",
            lambda value: format_ipv4(value),
        ),
        (
            "Host pairs above 0.5% of traffic",
            "SELECT SrcIP, DstIP, SUM(size) FROM flows GROUP BY SrcIP, DstIP "
            f"HAVING SUM(size) >= {int(0.005 * trace.total_size)} "
            "ORDER BY SUM(size) DESC LIMIT 5",
            None,
        ),
    ]

    pair_key = FIVE_TUPLE.partial("SrcIP", "DstIP")
    for title, sql, render in queries:
        print(f"-- {title}")
        print(f"   {sql}")
        for value, agg in run_query(sql, table):
            if render is not None:
                label = render(value)
            else:
                src, dst = pair_key.unpack(value)
                label = f"{format_ipv4(src)} -> {format_ipv4(dst)}"
            print(f"   {label:35s} {agg:10.0f}")
        print()


if __name__ == "__main__":
    main()
