#!/usr/bin/env python3
"""Heavy-change monitoring across measurement windows (§7.2 task).

Runs one CocoSketch per window and diffs the recovered flow tables to
find flows whose volume moved sharply between windows — the primitive
behind traffic-shift and anomaly detection.  Changes are reported on
two keys (host pairs and sources) from the same pair of sketches.

Run:  python examples/heavy_change_monitoring.py
"""

from __future__ import annotations

from repro import BasicCocoSketch, FIVE_TUPLE, FlowTable
from repro.flowkeys.fields import format_ipv4
from repro.traffic.synthetic import heavy_change_windows


def measure(window):
    sketch = BasicCocoSketch.from_memory(192 * 1024, d=2, seed=77)
    sketch.process(iter(window))
    return FlowTable.from_sketch(sketch, FIVE_TUPLE)


def changes(table_a, table_b, partial):
    agg_a = table_a.aggregate(partial).sizes
    agg_b = table_b.aggregate(partial).sizes
    return {
        key: agg_b.get(key, 0.0) - agg_a.get(key, 0.0)
        for key in set(agg_a) | set(agg_b)
    }


def main() -> None:
    window_a, window_b = heavy_change_windows(
        num_packets=120_000, num_flows=30_000, change_fraction=0.01, seed=3
    )
    print(f"Window A: {window_a}\nWindow B: {window_b}")
    threshold = 5e-4 * (window_a.total_size + window_b.total_size) / 2
    print(f"Heavy-change threshold: {threshold:.0f} packets\n")

    table_a = measure(window_a)
    table_b = measure(window_b)

    pair_key = FIVE_TUPLE.partial("SrcIP", "DstIP")
    pair_changes = changes(table_a, table_b, pair_key)
    heavy = {k: d for k, d in pair_changes.items() if abs(d) >= threshold}
    print(f"Heavy changes on (SrcIP, DstIP): {len(heavy)} flows")
    for key, delta in sorted(heavy.items(), key=lambda kv: -abs(kv[1]))[:8]:
        src, dst = pair_key.unpack(key)
        arrow = "SURGE" if delta > 0 else "DROP "
        print(
            f"  {arrow} {format_ipv4(src):15s} -> {format_ipv4(dst):15s} "
            f"{delta:+9.0f} pkts"
        )

    # Ground truth check on the same key.
    truth_a = window_a.ground_truth(pair_key)
    truth_b = window_b.ground_truth(pair_key)
    true_changes = {
        key: truth_b.get(key, 0) - truth_a.get(key, 0)
        for key in set(truth_a) | set(truth_b)
    }
    true_heavy = {k for k, d in true_changes.items() if abs(d) >= threshold}
    found = set(heavy)
    recall = len(found & true_heavy) / max(1, len(true_heavy))
    precision = len(found & true_heavy) / max(1, len(found))
    print(
        f"\nAgainst ground truth: recall {recall:.1%}, "
        f"precision {precision:.1%}"
    )

    src_key = FIVE_TUPLE.partial("SrcIP")
    src_changes = changes(table_a, table_b, src_key)
    heavy_src = {
        k: d for k, d in src_changes.items() if abs(d) >= threshold
    }
    print(f"\nSame sketches, different key — SrcIP changes: {len(heavy_src)}")
    for key, delta in sorted(
        heavy_src.items(), key=lambda kv: -abs(kv[1])
    )[:5]:
        print(f"  {format_ipv4(key):15s} {delta:+9.0f} pkts")


if __name__ == "__main__":
    main()
