#!/usr/bin/env python3
"""DDoS detection: many keys, one sketch (§2.2 use case).

Injects a simulated volumetric attack — many spoofed sources sending to
one victim — into background traffic, then shows how the *same*
CocoSketch answers all of the forensics questions an operator asks,
over keys chosen only after the incident:

1. Which destination is being hammered?            (DstIP)
2. Which service?                                  (DstIP, DstPort)
3. Is it a few sources or a distributed flood?     (SrcIP and SrcIP/8)
4. Which connection is the biggest single talker?  (5-tuple)

Run:  python examples/ddos_detection.py
"""

from __future__ import annotations

import random

from repro import BasicCocoSketch, FIVE_TUPLE, FlowTable, caida_like
from repro.flowkeys.fields import format_ipv4, parse_ipv4
from repro.traffic.trace import Trace

VICTIM = parse_ipv4("203.0.113.7")
VICTIM_PORT = 443
ATTACK_PACKETS = 40_000
ATTACK_SOURCES = 5_000


def build_attack_trace() -> Trace:
    """Background traffic with an interleaved spoofed-source flood."""
    background = caida_like(num_packets=160_000, num_flows=40_000, seed=99)
    rng = random.Random(1337)
    attack_keys = []
    for _ in range(ATTACK_PACKETS):
        spoofed_src = rng.getrandbits(32)
        attack_keys.append(
            FIVE_TUPLE.pack(
                spoofed_src % (1 << 32),
                VICTIM,
                rng.randrange(1024, 65536),
                VICTIM_PORT,
                6,
            )
        )
    keys = list(background.keys)
    positions = sorted(rng.sample(range(len(keys)), ATTACK_SOURCES))
    # Interleave the flood throughout the window.
    mixed = []
    attack_iter = iter(attack_keys)
    per_slot = ATTACK_PACKETS // len(keys) + 1
    for key in keys:
        mixed.append(key)
        for _ in range(per_slot):
            nxt = next(attack_iter, None)
            if nxt is not None:
                mixed.append(nxt)
    mixed.extend(attack_iter)
    return Trace(FIVE_TUPLE, mixed, None, name="ddos-window")


def main() -> None:
    trace = build_attack_trace()
    print(f"Measurement window: {trace}")
    total = trace.total_size

    sketch = BasicCocoSketch.from_memory(256 * 1024, d=2, seed=2)
    sketch.process(iter(trace))
    table = FlowTable.from_sketch(sketch, FIVE_TUPLE)

    print("\n[1] Who is being hammered?  (GROUP BY DstIP)")
    dst = table.aggregate(FIVE_TUPLE.partial("DstIP"))
    for key, est in dst.top_k(3):
        flag = "  <-- victim" if key == VICTIM else ""
        print(f"  {format_ipv4(key):15s} {est:9.0f} pkts "
              f"({est / total:6.1%} of traffic){flag}")

    print("\n[2] Which service?  (GROUP BY DstIP, DstPort)")
    svc_key = FIVE_TUPLE.partial("DstIP", "DstPort")
    svc = table.aggregate(svc_key)
    for key, est in svc.top_k(3):
        dst_ip, dst_port = svc_key.unpack(key)
        flag = "  <-- victim:443" if (dst_ip, dst_port) == (VICTIM, VICTIM_PORT) else ""
        print(f"  {format_ipv4(dst_ip):15s}:{dst_port:<5d} {est:9.0f} pkts{flag}")

    print("\n[3] Concentrated or distributed?")
    victim_share = dst.query(VICTIM) / total
    src = table.aggregate(FIVE_TUPLE.partial("SrcIP"))
    top_src = src.top_k(1)[0]
    print(f"  Victim receives {victim_share:.1%} of all traffic.")
    print(f"  Largest single source: {format_ipv4(top_src[0])} with "
          f"{top_src[1]:.0f} pkts ({top_src[1] / total:.2%})")
    src8 = table.aggregate(FIVE_TUPLE.partial(("SrcIP", 8)))
    top8 = src8.top_k(1)[0]
    print(f"  Largest /8 source block: {top8[0]}.0.0.0/8 with "
          f"{top8[1]:.0f} pkts ({top8[1] / total:.2%})")
    if top_src[1] / total < victim_share / 2:
        print("  => no source matches the victim's volume: the flood "
              "is *distributed* across many sources.")

    print("\n[4] Biggest single connection (5-tuple):")
    key, est = table.top_k(1)[0]
    s, d, sp, dp, proto = FIVE_TUPLE.unpack(key)
    print(f"  {format_ipv4(s)}:{sp} -> {format_ipv4(d)}:{dp} "
          f"proto={proto} ~{est:.0f} pkts")

    print(
        "\nAll four questions were answered from one 256 KB sketch; "
        "none of the keys had to be configured before the attack."
    )


if __name__ == "__main__":
    main()
