#!/usr/bin/env python3
"""Rule management: per-rule traffic accounting from one sketch (§2.2).

Operators keep thousands of prefix rules (ACLs, rate limits, routing
policies) and need to know how much traffic each rule actually matches
— to place hot rules in TCAM, to garbage-collect dead ones, to size
rate limiters.  Per-rule counters do not scale; with CocoSketch, one
sketch plus a longest-prefix-match pass over the recovered SrcIP table
attributes traffic to every rule, including rules installed *after*
the measurement window.

Run:  python examples/rule_management.py
"""

from __future__ import annotations

import random

from repro import BasicCocoSketch, FIVE_TUPLE, FlowTable, caida_like
from repro.flowkeys.fields import format_ipv4
from repro.flowkeys.trie import PrefixTrie, classify_traffic


def install_rules(trace, num_rules=40, seed=3) -> PrefixTrie:
    """A plausible rule table: prefixes drawn around real traffic."""
    rng = random.Random(seed)
    trie: PrefixTrie = PrefixTrie(32)
    trie.insert(0, 0, "default-deny")
    sources = list(trace.ground_truth(FIVE_TUPLE.partial("SrcIP")))
    for i in range(num_rules):
        src = rng.choice(sources)
        plen = rng.choice((8, 12, 16, 20, 24))
        trie.insert(src >> (32 - plen), plen, f"rule-{i:03d}/{plen}")
    return trie


def main() -> None:
    trace = caida_like(num_packets=150_000, num_flows=35_000, seed=61)
    print(f"Traffic window: {trace}")

    sketch = BasicCocoSketch.from_memory(256 * 1024, d=2, seed=9)
    sketch.process(iter(trace))
    table = FlowTable.from_sketch(sketch, FIVE_TUPLE)
    src_counts = table.aggregate(FIVE_TUPLE.partial("SrcIP")).sizes

    trie = install_rules(trace)
    print(f"Rule table: {len(trie)} prefix rules (plus default)")

    per_rule = classify_traffic(trie, src_counts)
    total = sum(per_rule.values())
    ranked = sorted(per_rule.items(), key=lambda kv: -kv[1])

    print("\nHot rules (promote to TCAM):")
    for (value, plen), size in ranked[:8]:
        if plen < 0:
            continue
        payload = trie.exact(value, plen)
        prefix_text = (
            format_ipv4(value << (32 - plen)) + f"/{plen}" if plen else "0.0.0.0/0"
        )
        print(f"  {payload or 'default':16s} {prefix_text:20s} "
              f"~{size:9.0f} pkts ({size / total:6.2%})")

    cold = [
        (rule, size)
        for rule, size in per_rule.items()
        if rule[1] > 0 and size < 1e-4 * total
    ]
    dead = [
        (v, l)
        for v, l, _ in trie.items()
        if l > 0 and (v, l) not in per_rule
    ]
    print(f"\nCold rules (<0.01% of traffic): {len(cold)}")
    print(f"Dead rules (matched nothing): {len(dead)} — eviction candidates")

    # Late binding: a rule installed *after* the window still gets an
    # answer from the same sketch.
    hot_src = max(src_counts, key=src_counts.get)
    new_prefix = hot_src >> 8
    trie.insert(new_prefix, 24, "rule-new/24")
    per_rule = classify_traffic(trie, src_counts)
    size = per_rule[(new_prefix, 24)]
    print(
        f"\nNewly installed {format_ipv4(new_prefix << 8)}/24 would have "
        f"matched ~{size:.0f} pkts ({size / total:.2%}) this window — "
        "known before it ever hits the data plane."
    )


if __name__ == "__main__":
    main()
