#!/usr/bin/env python3
"""Hierarchical heavy hitters over every SrcIP prefix (Fig 11 workload).

One CocoSketch answers heavy-hitter queries at *all 32* SrcIP prefix
lengths — the workload for which per-key solutions need 32 sketches
(and R-HHH needs megabytes).  Also demonstrates the classical
*discounted* HHH post-filter, which reports a prefix only for traffic
not already explained by its reported descendants.

Run:  python examples/hierarchical_heavy_hitters.py
"""

from __future__ import annotations

from repro import BasicCocoSketch, FIVE_TUPLE, FlowTable, caida_like
from repro.flowkeys.fields import format_ipv4
from repro.flowkeys.key import prefix_hierarchy
from repro.metrics.accuracy import evaluate_heavy_hitters
from repro.tasks.hhh import discounted_hhh


def main() -> None:
    trace = caida_like(num_packets=150_000, num_flows=40_000, seed=5)
    threshold = 0.002 * trace.total_size
    print(f"{trace}\nHHH threshold: {threshold:.0f} packets "
          f"(0.2% of traffic)\n")

    sketch = BasicCocoSketch.from_memory(400 * 1024, d=2, seed=3)
    sketch.process(iter(trace))
    table = FlowTable.from_sketch(sketch, FIVE_TUPLE)

    hierarchy = prefix_hierarchy(FIVE_TUPLE, "SrcIP", granularity=1)

    # Per-level heavy hitters with accuracy against ground truth.
    print("Per-level accuracy (every 4th prefix length):")
    print(f"  {'level':8s} {'true HH':>8s} {'recall':>7s} "
          f"{'precision':>9s} {'ARE':>8s}")
    tables = {}
    for level, partial in enumerate(hierarchy):
        estimates = table.aggregate(partial).sizes
        tables[level] = estimates
        truth = trace.ground_truth(partial)
        if partial.width % 4 == 0:
            report = evaluate_heavy_hitters(estimates, truth, threshold)
            n_true = sum(1 for v in truth.values() if v >= threshold)
            print(
                f"  {partial.name:8s} {n_true:8d} {report.recall:7.2%} "
                f"{report.precision:9.2%} {report.are:8.4f}"
            )

    # Discounted HHH: prefixes heavy *beyond* their heavy children.
    hhh = discounted_hhh(tables, hierarchy, threshold)
    print(f"\nDiscounted HHHs found: {len(hhh)}")
    print("Sample (shallowest 8):")
    sample = sorted(hhh, key=lambda lf: (-lf[0], lf[1]))[:8]
    for level, value in sample:
        plen = hierarchy[level].width
        ip = format_ipv4(value << (32 - plen))
        size = tables[level].get(value, 0.0)
        print(f"  {ip}/{plen:<2d}  ~{size:8.0f} pkts")


if __name__ == "__main__":
    main()
